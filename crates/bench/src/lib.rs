//! # `apc-bench` — benchmark harness support
//!
//! Shared workload helpers for the criterion benches in `benches/`. The
//! experiment index lives in `EXPERIMENTS.md` at the workspace root; each
//! bench target regenerates one experiment's series:
//!
//! | bench target | experiment |
//! |---|---|
//! | `consensus` | E7 — obstruction-free vs wait-free vs asymmetric latency |
//! | `arbiter` | E1/E9 — arbitrate latency vs camp sizes |
//! | `group` | E2/E9 — group consensus vs (n, x) and first-group index |
//! | `universal` | E8 — asymmetric universal object: VIP vs guest latency |
//! | `registers` | substrate — cells, stamped registers, snapshots |
//! | `model_checking` | E3/E5 — cost of exhaustive verification & valence |
//! | `store` | E10 — apc-store scenarios, batching, wait-free stats |
//!
//! Setting `BENCH_JSON=<path>` makes a bench run write its measurements as
//! machine-readable JSON (see the criterion shim); CI records
//! `BENCH_store.json` as the perf-trajectory artifact.

#![forbid(unsafe_code)]

use std::sync::Mutex;

/// Runs `f(pid)` on `n` scoped threads and returns per-thread wall times in
/// nanoseconds — the building block of the contended benches.
pub fn timed_threads<F>(n: usize, f: F) -> Vec<u64>
where
    F: Fn(usize) + Sync,
{
    let times = Mutex::new(vec![0u64; n]);
    std::thread::scope(|s| {
        for pid in 0..n {
            let f = &f;
            let times = &times;
            s.spawn(move || {
                let t0 = std::time::Instant::now();
                f(pid);
                let dt = t0.elapsed().as_nanos() as u64;
                times.lock().unwrap()[pid] = dt;
            });
        }
    });
    times.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_threads_reports_all() {
        let times = timed_threads(4, |_pid| {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(times.len(), 4);
    }
}
