//! Experiment E7: the cost of progress conditions.
//!
//! Series reproduced (shape, not absolute numbers):
//! * solo `propose` latency: CAS (wait-free) ≪ register rounds (OF) —
//!   obstruction-freedom is cheap only because it promises little;
//! * the asymmetric object's two faces: wait-free-member propose vs guest
//!   propose, solo;
//! * contended propose: the wait-free path is flat in the number of guests,
//!   the guest path degrades — the asymmetry the paper formalizes;
//! * adopt-commit (the register-only safety core) as the baseline unit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use apc_core::consensus::{
    AdoptCommit, AsymmetricConsensus, CasConsensus, Consensus, ObstructionFreeConsensus,
};
use apc_core::liveness::Liveness;
use apc_model::ProcessSet;

fn solo_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7/solo-propose");
    g.bench_function("cas-wait-free", |b| {
        b.iter_batched(
            || CasConsensus::new(Liveness::new_first_n(8, 8)),
            |cons| black_box(cons.propose(0, 42u64).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("obstruction-free-registers", |b| {
        b.iter_batched(
            || {
                ObstructionFreeConsensus::new(
                    Liveness::obstruction_free(ProcessSet::first_n(8)).unwrap(),
                )
            },
            |cons| black_box(cons.propose(0, 42u64).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("asymmetric-wait-free-member", |b| {
        b.iter_batched(
            || AsymmetricConsensus::new(Liveness::new_first_n(8, 2)),
            |cons| black_box(cons.propose(0, 42u64).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("asymmetric-guest", |b| {
        b.iter_batched(
            || AsymmetricConsensus::new(Liveness::new_first_n(8, 2)),
            |cons| black_box(cons.propose(5, 42u64).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn adopt_commit_unit(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7/adopt-commit");
    for n in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("solo", n), &n, |b, &n| {
            b.iter_batched(
                || AdoptCommit::new(n),
                |ac| black_box(ac.adopt_commit(0, 7u64).unwrap()),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn contended_propose(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7/contended-propose");
    g.sample_size(10);
    for threads in [2usize, 4, 8] {
        // Wait-free member completes while `threads` guests contend.
        g.bench_with_input(
            BenchmarkId::new("wait-free-member-vs-guests", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || AsymmetricConsensus::new(Liveness::new_first_n(threads + 1, 1)),
                    |cons| {
                        let times = apc_bench::timed_threads(threads + 1, |pid| {
                            let _ = cons.propose(pid, pid as u64).unwrap();
                        });
                        black_box(times)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        // All-guest contention on a pure OF object.
        g.bench_with_input(BenchmarkId::new("all-guests-of", threads), &threads, |b, &threads| {
            b.iter_batched(
                || {
                    ObstructionFreeConsensus::new(
                        Liveness::obstruction_free(ProcessSet::first_n(threads)).unwrap(),
                    )
                },
                |cons| {
                    let times = apc_bench::timed_threads(threads, |pid| {
                        let _ = cons.propose(pid, pid as u64).unwrap();
                    });
                    black_box(times)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, solo_latency, adopt_commit_unit, contended_propose);
criterion_main!(benches);
