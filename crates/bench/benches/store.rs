//! Experiment E10: the `apc-store` service layer.
//!
//! Series:
//! * every [`Scenario`] (uniform, hot-key, vip-heavy, guest-contention) at
//!   1 and 4 shards — the scaling and contention picture of the sharded
//!   commit path;
//! * same-shard batching vs one-append-per-op — what the operation layer's
//!   batching buys;
//! * the wait-free stats snapshot under guest load — the VIP dashboard
//!   path;
//! * the compaction/recovery scenario — fresh-handle replay with and
//!   without a checkpoint (the O(delta) vs O(history) win), snapshot
//!   save (seal + write) and crash recovery from disk.
//!
//! Run with `BENCH_JSON=BENCH_store.json cargo bench -p apc-bench --bench
//! store` to record the machine-readable series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use apc_store::workload::{preloaded_shard_log, Scenario};
use apc_store::{Batch, StoreBuilder, StoreOp};

const CLIENTS: usize = 6;
const OPS_PER_CLIENT: usize = 40;
const KEY_SPACE: usize = 64;
const VIP_CAPACITY: usize = 2;

fn build_store(shards: usize) -> apc_store::Store {
    StoreBuilder::new()
        .shards(shards)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .build()
        .expect("bench sizing is valid")
}

/// Builds the store and admits the scenario's client mix — the untimed
/// setup of one scenario iteration.
fn setup_scenario(
    scenario: Scenario,
    shards: usize,
) -> (apc_store::Store, Vec<apc_store::ClientTicket>) {
    let store = build_store(shards);
    let (vips, guests) = scenario.client_mix(CLIENTS, VIP_CAPACITY);
    let tickets: Vec<_> = (0..vips)
        .map(|_| store.admit_vip().expect("mix respects capacity"))
        .chain((0..guests).map(|_| store.admit_guest()))
        .collect();
    (store, tickets)
}

/// The timed half: every client issues its deterministic op stream on its
/// own thread.
fn run_scenario(scenario: Scenario, store: &apc_store::Store, tickets: &[apc_store::ClientTicket]) {
    apc_bench::timed_threads(tickets.len(), |i| {
        let mut client = store.client(tickets[i]);
        for step in 0..OPS_PER_CLIENT {
            let _ = client.execute(vec![scenario.op(i, step, KEY_SPACE)]);
        }
    });
}

fn scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/scenarios");
    g.sample_size(10);
    g.throughput(Throughput::Elements((CLIENTS * OPS_PER_CLIENT) as u64));
    for scenario in Scenario::ALL {
        for shards in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(scenario.name(), shards),
                &shards,
                |b, &shards| {
                    b.iter_batched(
                        || setup_scenario(scenario, shards),
                        |(store, tickets)| run_scenario(scenario, &store, &tickets),
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    g.finish();
}

fn batching(c: &mut Criterion) {
    const OPS: usize = 64;
    let mut g = c.benchmark_group("store/batching");
    g.sample_size(10);
    g.throughput(Throughput::Elements(OPS as u64));
    let puts = |i: usize| StoreOp::Put(format!("key/{i:04}"), i as u64);
    g.bench_function("one-append-per-op", |b| {
        b.iter_batched(
            || build_store(2),
            |store| {
                let mut client = store.client(store.admit_vip().unwrap());
                for i in 0..OPS {
                    let _ = client.execute(vec![puts(i)]);
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("single-batch", |b| {
        b.iter_batched(
            || build_store(2),
            |store| {
                let mut client = store.client(store.admit_vip().unwrap());
                let _ = client.execute((0..OPS).map(puts).collect());
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn stats_snapshot_under_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/stats-snapshot");
    g.sample_size(10);
    // Pre-load a store, then measure the register-only dashboard read.
    let store = build_store(4);
    let mut loader = store.client(store.admit_guest());
    for i in 0..256 {
        loader.put(&format!("key/{i:04}"), i);
    }
    g.bench_function("snapshot-4-shards", |b| {
        b.iter(|| {
            let digests = criterion::black_box(store.snapshot_stats());
            assert_eq!(digests.len(), 4);
        })
    });
    g.finish();
}

/// The compaction/recovery scenario: what a checkpoint buys a late-joining
/// replica, and what durability costs end to end.
fn recovery(c: &mut Criterion) {
    const PRELOAD: usize = 256;
    let mut g = c.benchmark_group("store/recovery");
    g.sample_size(10);

    // The replay-cost win, isolated on one shard log: a fresh handle on a
    // PRELOAD-cell log replays O(history) without a checkpoint and
    // O(delta)=O(1) with one.
    for (name, checkpointed) in
        [("fresh-handle-no-checkpoint", false), ("fresh-handle-post-checkpoint", true)]
    {
        g.bench_function(name, |b| {
            b.iter_batched(
                || preloaded_shard_log(PRELOAD, checkpointed),
                |log| {
                    let mut fresh = log.owned_handle(1).expect("port 1 free");
                    let resp = fresh.apply(Batch(vec![StoreOp::Get("key/0000".into())]));
                    criterion::black_box((resp, fresh.replay_steps()));
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }

    // Durable save (seal every shard + write + fsync) and crash recovery
    // (decode + boot at the checkpointed index).
    let scratch_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp-bench");
    std::fs::create_dir_all(&scratch_dir).expect("bench scratch dir");
    let path = scratch_dir.join("bench.snapshot");
    let preload_store = || {
        let store = build_store(2);
        let mut loader = store.client(store.admit_guest());
        for i in 0..PRELOAD {
            loader.put(&format!("key/{i:04}"), i as u64);
        }
        store
    };
    g.bench_function("snapshot-save", |b| {
        b.iter_batched(
            preload_store,
            |store| store.checkpoint().write_to(&path).expect("flush"),
            criterion::BatchSize::SmallInput,
        )
    });
    preload_store().checkpoint().write_to(&path).expect("seed snapshot");
    g.bench_function("snapshot-recover", |b| {
        b.iter(|| {
            let recovered = StoreBuilder::new()
                .shards(2)
                .vip_capacity(VIP_CAPACITY)
                .guest_ports(6)
                .guest_group_width(2)
                .recover(&path)
                .expect("recover");
            assert_eq!(recovered.replay_steps(), 0, "boot must not replay history");
            criterion::black_box(recovered.shards());
        })
    });
    g.finish();
}

criterion_group!(benches, scenarios, batching, stats_snapshot_under_load, recovery);
criterion_main!(benches);
