//! Experiment E10: the `apc-store` service layer.
//!
//! Series:
//! * every [`Scenario`] (uniform, hot-key, vip-heavy, guest-contention) at
//!   1 and 4 shards — the scaling and contention picture of the sharded
//!   commit path;
//! * the **hot-key-split scenario** — every client hammering its own hot
//!   key, all on one shard, measured before (`pre-split`, the plateau: one
//!   log serializes everything) and after (`post-split`) a live
//!   [`Store::split_shard`] of the hot shard — the payoff series of the
//!   topology machinery (see `hot_key_split` for where the win shows per
//!   host shape; `examples/store_bench.rs` drives the in-place mid-run
//!   split with an asserted recovery);
//! * the **elastic scenario** — the same melt with the automatic policy
//!   driver (`StoreBuilder::elastic`) doing the splitting and, once the
//!   load moves away, the merging: `post-auto-split` and
//!   `post-auto-merge` measure the converged steady states with zero
//!   manual reconfiguration calls;
//! * same-shard batching vs one-append-per-op — what the operation layer's
//!   batching buys;
//! * the wait-free stats snapshot under guest load — the VIP dashboard
//!   path;
//! * the **observability series** (`store/obs/*`) — the scrape+encode
//!   cost on a loaded store, and the commit path with vs without
//!   concurrent scrapers: the measured twin of the lint-verified
//!   wait-free scrape path (scraping must not tax the clients);
//! * the compaction/recovery scenario — fresh-handle replay with and
//!   without a checkpoint (the O(delta) vs O(history) win), snapshot
//!   save (seal + write) and crash recovery from disk;
//! * the **durability series** (`store/wal/*`) — the op-granular WAL's
//!   two progress classes: `group-append` (what logging a frame costs a
//!   commit that never waits for the disk), `sync-commit` (the VIP
//!   fsync-acknowledged path end to end; fsync-bound, so exempt from the
//!   trend gate like snapshot-save) and `replay` (crash recovery =
//!   segment scan + collapsed-effect replay).
//!
//! Run with `BENCH_JSON=BENCH_store.json cargo bench -p apc-bench --bench
//! store` to record the machine-readable series; CI diffs them against the
//! committed baseline with `bench_trend` and fails on a >30% regression.
//!
//! [`Store::split_shard`]: apc_store::Store::split_shard

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use apc_store::workload::{keys_on_shard, preloaded_shard_log, Scenario};
use apc_store::{Batch, ElasticityPolicy, ShardCmd, Store, StoreBuilder, StoreOp};

const CLIENTS: usize = 6;
const OPS_PER_CLIENT: usize = 40;
const KEY_SPACE: usize = 64;
const VIP_CAPACITY: usize = 2;

fn build_store(shards: usize) -> apc_store::Store {
    StoreBuilder::new()
        .shards(shards)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .build()
        .expect("bench sizing is valid")
}

/// Builds the store and admits the scenario's client mix — the untimed
/// setup of one scenario iteration.
fn setup_scenario(
    scenario: Scenario,
    shards: usize,
) -> (apc_store::Store, Vec<apc_store::ClientTicket>) {
    let store = build_store(shards);
    let (vips, guests) = scenario.client_mix(CLIENTS, VIP_CAPACITY);
    let tickets: Vec<_> = (0..vips)
        .map(|_| store.admit_vip().expect("mix respects capacity"))
        .chain((0..guests).map(|_| store.admit_guest()))
        .collect();
    (store, tickets)
}

/// The timed half: every client issues its deterministic op stream on its
/// own thread.
fn run_scenario(scenario: Scenario, store: &apc_store::Store, tickets: &[apc_store::ClientTicket]) {
    apc_bench::timed_threads(tickets.len(), |i| {
        let mut client = store.client(tickets[i]);
        for step in 0..OPS_PER_CLIENT {
            let _ = client.execute(vec![scenario.op(i, step, KEY_SPACE)]);
        }
    });
}

fn scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/scenarios");
    // A generous budget: these series are gated by bench_trend in CI, so
    // averaging down run-to-run scheduler noise matters more than speed.
    g.sample_size(50);
    g.throughput(Throughput::Elements((CLIENTS * OPS_PER_CLIENT) as u64));
    for scenario in Scenario::ALL {
        for shards in [1usize, 4] {
            g.bench_with_input(BenchmarkId::new(scenario.name(), shards), &shards, |b, &shards| {
                b.iter_batched(
                    || setup_scenario(scenario, shards),
                    |(store, tickets)| run_scenario(scenario, &store, &tickets),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

/// Sizing of the hot-key-split phases: one hot key per client, with every
/// port of the hot shard active (that maximizes the replay amplification
/// the split relieves), and phases deep enough for the one-shard plateau to
/// actually form (shallow phases are dominated by thread spawn, and the
/// melt never shows).
const HOT_CLIENTS: usize = 8;
const HOT_OPS_PER_CLIENT: usize = 300;

/// One hot-shard phase: every client hammers its own hot key (get/put mix);
/// the keys all route to shard 0 under the initial topology, so pre-split
/// the whole store is bounded by one shard log.
fn run_hot_phase(store: &Store, tickets: &[apc_store::ClientTicket], keys: &[String]) {
    apc_bench::timed_threads(tickets.len(), |i| {
        let mut client = store.client(tickets[i]);
        let key = &keys[i];
        for step in 0..HOT_OPS_PER_CLIENT {
            if step % 3 == 0 {
                let _ = client.get(key);
            } else {
                let _ = client.put(key, step as u64);
            }
        }
    });
}

/// Builds the hot-shard stress cell — a 4-shard store with one hot key per
/// client, all on shard 0 — and **melts it** (two untimed warm rounds form
/// the plateau the measured phase starts from); optionally performs the
/// live split before the measured phase.
fn setup_hot_split(split: bool) -> (Store, Vec<apc_store::ClientTicket>, Vec<String>) {
    let store = StoreBuilder::new()
        .shards(4)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .checkpoint_every(64)
        .build()
        .expect("bench sizing is valid");
    let keys = keys_on_shard(&store.topology(), 0, HOT_CLIENTS);
    let mut loader = store.client(store.admit_guest());
    for key in &keys {
        loader.put(key, 0);
    }
    let tickets: Vec<_> = (0..VIP_CAPACITY)
        .map(|_| store.admit_vip().expect("mix respects capacity"))
        .chain((0..HOT_CLIENTS - VIP_CAPACITY).map(|_| store.admit_guest()))
        .collect();
    for _ in 0..3 {
        run_hot_phase(&store, &tickets, &keys); // melt (untimed)
    }
    if split {
        store.split_shard(0).expect("shard 0 exists");
    }
    (store, tickets, keys)
}

/// The headline series of this experiment: `pre-split` is the melted
/// plateau (one log serializes every client), `post-split` is the same
/// workload right after a live [`Store::split_shard`] of the hot shard.
/// On multi-core hosts the split unlocks shard-level parallelism and the
/// post-split series runs above the plateau; on a single core the two sit
/// at parity here, and the split's win shows in the long-lived in-place
/// scenario of `examples/store_bench.rs` instead (compaction of the melted
/// log + fewer active handles replaying each commit).
fn hot_key_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/scenarios/hot-key-split");
    // These two series are gated; buy the largest averaging window the
    // shim offers (the melt in the setup dominates wall-clock anyway).
    g.sample_size(400);
    g.throughput(Throughput::Elements((HOT_CLIENTS * HOT_OPS_PER_CLIENT) as u64));
    for (name, split) in [("pre-split", false), ("post-split", true)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || setup_hot_split(split),
                |(store, tickets, keys)| run_hot_phase(&store, &tickets, &keys),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Builds an **elastic** hot-shard cell — same melt as `setup_hot_split`,
/// but the reconfigurations are the policy driver's, never a manual call —
/// and drives it to convergence: through the auto-split (`through_merge ==
/// false`; the returned keys keep the melt aimed at the grown subtree) or
/// all the way through the cool-down auto-merges back to the original live
/// set (`through_merge == true`; the returned keys are the cool traffic).
fn setup_elastic(through_merge: bool) -> (Store, Vec<apc_store::ClientTicket>, Vec<String>) {
    let store = StoreBuilder::new()
        .shards(4)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .elastic(ElasticityPolicy {
            evaluate_every: 128,
            // Dwarf the single-core burst length (≤ 900 consecutive
            // same-shard commits, see the policy docs) so scheduler slices
            // never read as key-space skew.
            min_window: 4096,
            cooldown: 1024,
            ..ElasticityPolicy::default()
        })
        .build()
        .expect("bench sizing is valid");
    let hot_keys = keys_on_shard(&store.topology(), 0, HOT_CLIENTS);
    let mut loader = store.client(store.admit_guest());
    for key in &hot_keys {
        loader.put(key, 0);
    }
    let tickets: Vec<_> = (0..VIP_CAPACITY)
        .map(|_| store.admit_vip().expect("mix respects capacity"))
        .chain((0..HOT_CLIENTS - VIP_CAPACITY).map(|_| store.admit_guest()))
        .collect();
    let mut rounds = 0;
    while store.elastic_report().expect("driver configured").splits == 0 {
        run_hot_phase(&store, &tickets, &hot_keys);
        rounds += 1;
        assert!(rounds < 64, "the melt must trigger an auto-split");
    }
    if !through_merge {
        return (store, tickets, hot_keys);
    }
    let cool_keys: Vec<String> =
        (1..4).flat_map(|s| keys_on_shard(&store.topology(), s, HOT_CLIENTS.div_ceil(3))).collect();
    let mut rounds = 0;
    while store.live_shards() > 4 {
        run_hot_phase(&store, &tickets, &cool_keys);
        rounds += 1;
        assert!(rounds < 64, "fading load must trigger the auto-merges");
    }
    (store, tickets, cool_keys)
}

/// The elastic series: the hot workload right after the driver's own
/// split (`post-auto-split`) and the cool workload right after its merges
/// unwound the topology (`post-auto-merge`) — the converged steady states
/// of the two halves of the policy, with zero manual reconfiguration
/// calls anywhere in the cell.
fn elastic(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/scenarios/elastic");
    g.sample_size(50);
    g.throughput(Throughput::Elements((HOT_CLIENTS * HOT_OPS_PER_CLIENT) as u64));
    for (name, through_merge) in [("post-auto-split", false), ("post-auto-merge", true)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || setup_elastic(through_merge),
                |(store, tickets, keys)| run_hot_phase(&store, &tickets, &keys),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn batching(c: &mut Criterion) {
    const OPS: usize = 64;
    let mut g = c.benchmark_group("store/batching");
    g.sample_size(10);
    g.throughput(Throughput::Elements(OPS as u64));
    let puts = |i: usize| StoreOp::Put(format!("key/{i:04}"), i as u64);
    g.bench_function("one-append-per-op", |b| {
        b.iter_batched(
            || build_store(2),
            |store| {
                let mut client = store.client(store.admit_vip().unwrap());
                for i in 0..OPS {
                    let _ = client.execute(vec![puts(i)]);
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("single-batch", |b| {
        b.iter_batched(
            || build_store(2),
            |store| {
                let mut client = store.client(store.admit_vip().unwrap());
                let _ = client.execute((0..OPS).map(puts).collect());
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn stats_snapshot_under_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/stats-snapshot");
    g.sample_size(10);
    // Pre-load a store, then measure the register-only dashboard read.
    let store = build_store(4);
    let mut loader = store.client(store.admit_guest());
    for i in 0..256 {
        loader.put(&format!("key/{i:04}"), i);
    }
    g.bench_function("snapshot-4-shards", |b| {
        b.iter(|| {
            let digests = criterion::black_box(store.snapshot_stats());
            assert_eq!(digests.len(), 4);
        })
    });
    g.finish();
}

/// The PR-7 observability series: what the wait-free scrape path costs —
/// to the scraper (`scrape-encode`: one full registry read plus the
/// Prometheus text encoding, on a loaded store that has been through a
/// reconfig so every series is populated) and, crucially, to the clients
/// being watched (`commit-no-scrape` vs `commit-under-scrape`: the same
/// uniform commit storm, the latter with dashboard pollers hammering
/// [`Store::scrape`] the whole time). The pair rides the `bench_trend`
/// gate together: a scrape path that started taking locks or queueing
/// behind the commit path would surface as an under-scrape regression,
/// complementing the `apc-lint` static proof with a measured one.
///
/// [`Store::scrape`]: apc_store::Store::scrape
fn observability(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/obs");
    g.sample_size(50);

    // Load + reconfigure once so the scrape carries every series: both
    // tiers' commit histograms, per-shard gauges, and reconfig events.
    let store = build_store(4);
    let mut loader = store.client(store.admit_guest());
    for i in 0..256 {
        loader.put(&format!("key/{i:04}"), i);
    }
    store.split_shard(0).expect("shard 0 exists");
    g.bench_function("scrape-encode", |b| {
        b.iter(|| {
            let text = apc_store::encode_prometheus(&store.scrape());
            assert!(text.contains("store_commits_total"), "scrape must carry the registry");
            criterion::black_box(text);
        })
    });

    g.throughput(Throughput::Elements((CLIENTS * OPS_PER_CLIENT) as u64));
    for (name, scrapers) in [("commit-no-scrape", 0usize), ("commit-under-scrape", 2)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || setup_scenario(Scenario::Uniform, 4),
                |(store, tickets)| {
                    let stop = std::sync::atomic::AtomicBool::new(false);
                    std::thread::scope(|s| {
                        for _ in 0..scrapers {
                            s.spawn(|| {
                                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                                    criterion::black_box(apc_store::encode_prometheus(
                                        &store.scrape(),
                                    ));
                                    std::thread::yield_now();
                                }
                            });
                        }
                        run_scenario(Scenario::Uniform, &store, &tickets);
                        stop.store(true, std::sync::atomic::Ordering::Release);
                    });
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// The compaction/recovery scenario: what a checkpoint buys a late-joining
/// replica, and what durability costs end to end.
fn recovery(c: &mut Criterion) {
    const PRELOAD: usize = 256;
    let mut g = c.benchmark_group("store/recovery");
    g.sample_size(10);

    // The replay-cost win, isolated on one shard log: a fresh handle on a
    // PRELOAD-cell log replays O(history) without a checkpoint and
    // O(delta)=O(1) with one.
    for (name, checkpointed) in
        [("fresh-handle-no-checkpoint", false), ("fresh-handle-post-checkpoint", true)]
    {
        g.bench_function(name, |b| {
            b.iter_batched(
                || preloaded_shard_log(PRELOAD, checkpointed),
                |log| {
                    let mut fresh = log.owned_handle(1).expect("port 1 free");
                    let resp = fresh.apply(ShardCmd::Batch(Batch::new(
                        0,
                        vec![StoreOp::Get("key/0000".into())],
                    )));
                    criterion::black_box((resp, fresh.replay_steps()));
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }

    // Durable save (seal every shard + write + fsync) and crash recovery
    // (decode + boot at the checkpointed index).
    let scratch_dir =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp-bench");
    std::fs::create_dir_all(&scratch_dir).expect("bench scratch dir");
    let path = scratch_dir.join("bench.snapshot");
    let preload_store = || {
        let store = build_store(2);
        let mut loader = store.client(store.admit_guest());
        for i in 0..PRELOAD {
            loader.put(&format!("key/{i:04}"), i as u64);
        }
        store
    };
    g.bench_function("snapshot-save", |b| {
        b.iter_batched(
            preload_store,
            |store| store.checkpoint().write_to(&path).expect("flush"),
            criterion::BatchSize::SmallInput,
        )
    });
    preload_store().checkpoint().write_to(&path).expect("seed snapshot");
    g.bench_function("snapshot-recover", |b| {
        b.iter(|| {
            let recovered = StoreBuilder::new()
                .shards(2)
                .vip_capacity(VIP_CAPACITY)
                .guest_ports(6)
                .guest_group_width(2)
                .recover(&path)
                .expect("recover");
            assert_eq!(recovered.replay_steps(), 0, "boot must not replay history");
            criterion::black_box(recovered.shards());
        })
    });
    g.finish();
}

/// The durability scenario: what each durability class costs, and what
/// crash recovery through the WAL costs.
fn wal(c: &mut Criterion) {
    use apc_store::wal::{Wal, WalConfig};

    let scratch_dir =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp-bench/wal");
    let _ = std::fs::remove_dir_all(&scratch_dir);
    std::fs::create_dir_all(&scratch_dir).expect("bench scratch dir");
    // Deterministic flush points: the group series must measure the
    // buffered append alone, never a racing background fsync.
    let cfg = WalConfig { background_flusher: false, ..WalConfig::default() };

    let mut g = c.benchmark_group("store/wal");

    // What WAL logging costs a group commit: the full commit path with a
    // frame encode + buffer append riding along, no disk wait. Compare
    // against `store/scenarios/uniform/*` for the no-WAL commit cost.
    let wal = Wal::open(scratch_dir.join("group-append"), cfg).expect("fresh wal");
    let store = StoreBuilder::new()
        .shards(2)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .build_with_wal(wal)
        .expect("bench sizing is valid");
    let mut client = store.client(store.admit_guest());
    let mut i = 0u64;
    g.bench_function("group-append", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            criterion::black_box(client.put(&format!("key/{:04}", i % 256), i));
        })
    });
    drop(store);

    // The VIP's synchronous-durability commit: append + group-commit
    // flush + fsync, acknowledged end to end. Fsync-bound by design.
    let wal = Wal::open(scratch_dir.join("sync-commit"), cfg).expect("fresh wal");
    let store = StoreBuilder::new()
        .shards(2)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .build_with_wal(wal)
        .expect("bench sizing is valid");
    let mut client = store.client(store.admit_vip().expect("vip port"));
    g.sample_size(10);
    g.bench_function("sync-commit", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let resps = client
                .execute_durable(vec![StoreOp::Put(format!("key/{:04}", i % 256), i)])
                .expect("sync acknowledged");
            criterion::black_box(resps);
        })
    });
    drop(store);

    // Crash recovery through the log: scan the dead process's segments,
    // collapse the frames, replay by key into a fresh store. The WAL twin
    // of `store/recovery/snapshot-recover`.
    const FRAMES: u64 = 256;
    let pristine = scratch_dir.join("replay-pristine");
    {
        let wal = Wal::open(&pristine, cfg).expect("fresh wal");
        let store = StoreBuilder::new()
            .shards(2)
            .vip_capacity(VIP_CAPACITY)
            .guest_ports(6)
            .guest_group_width(2)
            .build_with_wal(std::sync::Arc::clone(&wal))
            .expect("bench sizing is valid");
        let mut loader = store.client(store.admit_guest());
        for i in 0..FRAMES {
            loader.put(&format!("key/{i:04}"), i);
        }
        wal.sync().expect("seed flush");
        wal.simulate_crash();
    }
    let seed: Vec<(std::path::PathBuf, Vec<u8>)> = std::fs::read_dir(&pristine)
        .expect("pristine wal dir")
        .flatten()
        .map(|e| (e.path(), std::fs::read(e.path()).expect("segment bytes")))
        .collect();
    let replay_dir = scratch_dir.join("replay");
    g.bench_function("replay", |b| {
        b.iter_batched(
            || {
                let _ = std::fs::remove_dir_all(&replay_dir);
                std::fs::create_dir_all(&replay_dir).expect("replay dir");
                for (path, bytes) in &seed {
                    let name = path.file_name().expect("segment file name");
                    std::fs::write(replay_dir.join(name), bytes).expect("reseed segment");
                }
            },
            |()| {
                let wal = Wal::open(&replay_dir, cfg).expect("reopen after crash");
                let recovered = StoreBuilder::new()
                    .shards(2)
                    .vip_capacity(VIP_CAPACITY)
                    .guest_ports(6)
                    .guest_group_width(2)
                    .recover_with_wal(replay_dir.join("absent.snapshot"), wal)
                    .expect("wal replay");
                criterion::black_box(recovered.shards());
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The PR-9 wire front-end series (`store/net/*`):
///
/// * `codec-roundtrip` — one request envelope through the binary codec and
///   back: encode, reframe, checksum-verify, decode;
/// * `reactor-echo` — one request/response RTT through the reactor on an
///   otherwise idle connection: the wire path's floor over the in-process
///   `Client` the scenarios above measure;
/// * `loadgen-10k/*` — the headline numbers: 10,000 concurrent simulated
///   guest connections multiplexed by one reactor, every round-trip timed
///   individually; the recorded series are the p50/p99/p999 of those RTTs
///   plus the served-request throughput. Guest overflow beyond the per-turn
///   dispatch cap is shed with the typed 429 and resent, so the tail
///   percentiles *include* retried requests — exactly what a caller sees.
///   The p999 rides the trend report but is exempt from the CI gate (a
///   single scheduler hiccup on a shared runner owns that percentile).
/// * `pipelined-batched` / `pipelined-unbatched` — the PR-10 batching win:
///   16 guest connections each pipeline 8 single-op envelopes; batched
///   mode coalesces each poll turn's drain into one planned store round
///   (~one log append per shard) while unbatched commits every envelope
///   alone. Both record ns per envelope served; the acceptance bar is
///   batched ≥ 2x the unbatched throughput.
fn net(c: &mut Criterion) {
    use apc_net::{
        decode_message, encode_request, FrameReader, NetClient, ServerConfig, StoreServer,
    };
    use apc_store::{Request, TierCredential};
    use std::time::Instant;

    let mut g = c.benchmark_group("store/net");
    g.sample_size(50);

    let envelope = |c: usize, round: usize| {
        Request::new(vec![
            StoreOp::Put(format!("net/{c:05}"), round as u64),
            StoreOp::Get(format!("net/{c:05}")),
        ])
        .credential(TierCredential::Guest)
        .retry_budget(8)
    };

    g.throughput(Throughput::Elements(1));
    g.bench_function("codec-roundtrip", |b| {
        let mut reader = FrameReader::new();
        let req = envelope(0, 0);
        b.iter(|| {
            reader.push(&encode_request(7, &req));
            let payload = reader.next_payload().expect("clean frame").expect("complete frame");
            criterion::black_box(decode_message(&payload).expect("roundtrip"));
        })
    });

    g.bench_function("reactor-echo", |b| {
        let store = build_store(2);
        let mut server =
            StoreServer::new(&store, ServerConfig { vip_tokens: vec![], ..Default::default() });
        let mut conn = NetClient::connect(&mut server, TierCredential::Guest);
        server.poll(); // handshake
        let mut round = 0usize;
        b.iter(|| {
            round += 1;
            conn.send(&envelope(0, round));
            server.poll();
            let got = conn.drain().expect("clean wire");
            assert_eq!(got.len(), 1, "echo served in one turn");
            criterion::black_box(got);
        })
    });
    g.finish();

    // The loadgen drives its own measurement loop (percentiles over
    // individually timed RTTs don't fit the mean-of-repeats Bencher), so
    // its series are recorded via `report_measurement`.
    const CONNS: usize = 10_000;
    const ROUNDS: usize = 2;
    let store = build_store(4);
    let cfg = ServerConfig {
        vip_tokens: vec![],
        guest_dispatch_per_poll: 2_048,
        ..ServerConfig::default()
    };
    let mut server = StoreServer::new(&store, cfg);
    let mut conns: Vec<NetClient> =
        (0..CONNS).map(|_| NetClient::connect(&mut server, TierCredential::Guest)).collect();
    let mut sent_at: Vec<Option<Instant>> = vec![None; CONNS];
    let mut left = vec![ROUNDS; CONNS];
    let mut lat: Vec<u64> = Vec::with_capacity(CONNS * ROUNDS);
    let wall = Instant::now();
    while lat.len() < CONNS * ROUNDS {
        for (c, conn) in conns.iter_mut().enumerate() {
            if left[c] > 0 && sent_at[c].is_none() {
                conn.send(&envelope(c, left[c]));
                sent_at[c] = Some(Instant::now());
            }
        }
        server.poll();
        for (c, conn) in conns.iter_mut().enumerate() {
            for (_, results) in conn.drain().expect("clean wire") {
                if results.iter().any(|r| r.is_err()) {
                    // The typed 429: resend; the RTT clock keeps its
                    // original start, so retried requests land in the tail.
                    conn.send(&envelope(c, left[c]));
                } else {
                    let t0 = sent_at[c].take().expect("response matches a send");
                    lat.push(t0.elapsed().as_nanos().try_into().unwrap_or(u64::MAX));
                    left[c] -= 1;
                }
            }
        }
    }
    let wall_ns = wall.elapsed().as_nanos();
    lat.sort_unstable();
    let pct = |p: f64| lat[(((lat.len() - 1) as f64 * p).round() as usize).min(lat.len() - 1)];
    for (name, p) in [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)] {
        criterion::report_measurement(&format!("store/net/loadgen-10k/{name}"), pct(p).into(), 1);
    }
    criterion::report_measurement(
        "store/net/loadgen-10k/throughput",
        wall_ns / (lat.len() as u128),
        1,
    );

    // The batching A/B: identical pipelined load, the only difference is
    // `batch_guest_dispatch`. Manual-timed for the same reason as the
    // loadgen — one measurement spans a whole send-all/serve-all cycle.
    const PIPE_CONNS: usize = 16;
    const PIPE_DEPTH: usize = 8;
    const PIPE_ITERS: usize = 200;
    for (name, batch) in [("pipelined-batched", true), ("pipelined-unbatched", false)] {
        let store = build_store(2);
        let cfg = ServerConfig {
            vip_tokens: vec![],
            batch_guest_dispatch: batch,
            ..ServerConfig::default()
        };
        let mut server = StoreServer::new(&store, cfg);
        let mut conns: Vec<NetClient> = (0..PIPE_CONNS)
            .map(|_| NetClient::connect(&mut server, TierCredential::Guest))
            .collect();
        server.poll(); // handshakes
        let mut spent: u128 = 0;
        for round in 0..PIPE_ITERS {
            let t0 = Instant::now();
            for (c, conn) in conns.iter_mut().enumerate() {
                for d in 0..PIPE_DEPTH {
                    conn.send(
                        &Request::new(vec![StoreOp::Put(format!("pipe/{c:02}/{d}"), round as u64)])
                            .credential(TierCredential::Guest)
                            .retry_budget(8),
                    );
                }
            }
            let mut got = 0usize;
            while got < PIPE_CONNS * PIPE_DEPTH {
                server.poll();
                for conn in conns.iter_mut() {
                    let responses = conn.drain().expect("clean wire");
                    assert!(responses.iter().all(|(_, r)| r.iter().all(Result::is_ok)));
                    got += responses.len();
                }
            }
            spent += t0.elapsed().as_nanos();
        }
        let envelopes = (PIPE_ITERS * PIPE_CONNS * PIPE_DEPTH) as u128;
        criterion::report_measurement(&format!("store/net/{name}"), spent / envelopes, 1);
    }
}

criterion_group!(
    benches,
    scenarios,
    hot_key_split,
    elastic,
    batching,
    stats_snapshot_under_load,
    observability,
    recovery,
    wal,
    net
);
criterion_main!(benches);
