//! Experiment E10: the `apc-store` service layer.
//!
//! Series:
//! * every [`Scenario`] (uniform, hot-key, vip-heavy, guest-contention) at
//!   1 and 4 shards — the scaling and contention picture of the sharded
//!   commit path;
//! * same-shard batching vs one-append-per-op — what the operation layer's
//!   batching buys;
//! * the wait-free stats snapshot under guest load — the VIP dashboard
//!   path.
//!
//! Run with `BENCH_JSON=BENCH_store.json cargo bench -p apc-bench --bench
//! store` to record the machine-readable series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use apc_store::workload::Scenario;
use apc_store::{StoreBuilder, StoreOp};

const CLIENTS: usize = 6;
const OPS_PER_CLIENT: usize = 40;
const KEY_SPACE: usize = 64;
const VIP_CAPACITY: usize = 2;

fn build_store(shards: usize) -> apc_store::Store {
    StoreBuilder::new()
        .shards(shards)
        .vip_capacity(VIP_CAPACITY)
        .guest_ports(6)
        .guest_group_width(2)
        .build()
        .expect("bench sizing is valid")
}

/// Builds the store and admits the scenario's client mix — the untimed
/// setup of one scenario iteration.
fn setup_scenario(
    scenario: Scenario,
    shards: usize,
) -> (apc_store::Store, Vec<apc_store::ClientTicket>) {
    let store = build_store(shards);
    let (vips, guests) = scenario.client_mix(CLIENTS, VIP_CAPACITY);
    let tickets: Vec<_> = (0..vips)
        .map(|_| store.admit_vip().expect("mix respects capacity"))
        .chain((0..guests).map(|_| store.admit_guest()))
        .collect();
    (store, tickets)
}

/// The timed half: every client issues its deterministic op stream on its
/// own thread.
fn run_scenario(scenario: Scenario, store: &apc_store::Store, tickets: &[apc_store::ClientTicket]) {
    apc_bench::timed_threads(tickets.len(), |i| {
        let mut client = store.client(tickets[i]);
        for step in 0..OPS_PER_CLIENT {
            let _ = client.execute(vec![scenario.op(i, step, KEY_SPACE)]);
        }
    });
}

fn scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/scenarios");
    g.sample_size(10);
    g.throughput(Throughput::Elements((CLIENTS * OPS_PER_CLIENT) as u64));
    for scenario in Scenario::ALL {
        for shards in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(scenario.name(), shards),
                &shards,
                |b, &shards| {
                    b.iter_batched(
                        || setup_scenario(scenario, shards),
                        |(store, tickets)| run_scenario(scenario, &store, &tickets),
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    g.finish();
}

fn batching(c: &mut Criterion) {
    const OPS: usize = 64;
    let mut g = c.benchmark_group("store/batching");
    g.sample_size(10);
    g.throughput(Throughput::Elements(OPS as u64));
    let puts = |i: usize| StoreOp::Put(format!("key/{i:04}"), i as u64);
    g.bench_function("one-append-per-op", |b| {
        b.iter_batched(
            || build_store(2),
            |store| {
                let mut client = store.client(store.admit_vip().unwrap());
                for i in 0..OPS {
                    let _ = client.execute(vec![puts(i)]);
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("single-batch", |b| {
        b.iter_batched(
            || build_store(2),
            |store| {
                let mut client = store.client(store.admit_vip().unwrap());
                let _ = client.execute((0..OPS).map(puts).collect());
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn stats_snapshot_under_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/stats-snapshot");
    g.sample_size(10);
    // Pre-load a store, then measure the register-only dashboard read.
    let store = build_store(4);
    let mut loader = store.client(store.admit_guest());
    for i in 0..256 {
        loader.put(&format!("key/{i:04}"), i);
    }
    g.bench_function("snapshot-4-shards", |b| {
        b.iter(|| {
            let digests = criterion::black_box(store.snapshot_stats());
            assert_eq!(digests.len(), 4);
        })
    });
    g.finish();
}

criterion_group!(benches, scenarios, batching, stats_snapshot_under_load);
criterion_main!(benches);
