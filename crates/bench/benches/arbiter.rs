//! Experiment E1/E9: arbiter (Figure 4) latency across camp configurations.
//!
//! Series:
//! * lone-owner and lone-guest arbitrate latency (the uncontended paths of
//!   lines 01–06);
//! * owner + k guests racing (guests wait on `WINNER`, owners go through
//!   `XCONS`);
//! * guests-only with growing camps (no waiting — line 04's else-branch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use apc_core::arbiter::{Arbiter, Role};
use apc_model::ProcessSet;

fn solo_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1/solo-arbitrate");
    g.bench_function("lone-owner", |b| {
        b.iter_batched(
            || Arbiter::new(ProcessSet::from_indices([0])),
            |arb| black_box(arb.arbitrate(0, Role::Owner).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("lone-guest", |b| {
        b.iter_batched(
            || Arbiter::new(ProcessSet::from_indices([0])),
            |arb| black_box(arb.arbitrate(1, Role::Guest).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1/contended-arbitrate");
    g.sample_size(10);
    for guests in [1usize, 3, 7] {
        g.bench_with_input(BenchmarkId::new("1-owner-vs-guests", guests), &guests, |b, &guests| {
            b.iter_batched(
                || Arbiter::new(ProcessSet::from_indices([0])),
                |arb| {
                    let times = apc_bench::timed_threads(guests + 1, |pid| {
                        let role = if pid == 0 { Role::Owner } else { Role::Guest };
                        let _ = arb.arbitrate(pid, role).unwrap();
                    });
                    black_box(times)
                },
                criterion::BatchSize::SmallInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("guests-only", guests), &guests, |b, &guests| {
            b.iter_batched(
                || Arbiter::new(ProcessSet::from_indices([0])),
                |arb| {
                    let times = apc_bench::timed_threads(guests, |pid| {
                        let _ = arb.arbitrate(pid + 1, Role::Guest).unwrap();
                    });
                    black_box(times)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, solo_paths, contended);
criterion_main!(benches);
