//! Experiments E2/E9: group-based asymmetric consensus (Figure 5) scaling.
//!
//! Series:
//! * all-participate completion time vs (n, x) — more groups ⇒ longer
//!   arbiter cascades (competition #2 runs `y−1` levels);
//! * first-participating-group index `y` sweep at fixed (n, x): larger `y`
//!   means a longer cascade for the winners, smaller `y` means the privileged
//!   group short-circuits — the asymmetry of the termination condition;
//! * solo propose per group index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use apc_core::group::GroupConsensus;

fn all_participate(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2/all-participate");
    g.sample_size(10);
    for (n, x) in [(4usize, 2usize), (6, 2), (6, 3), (8, 2), (8, 4)] {
        g.bench_with_input(BenchmarkId::new("n-x", format!("{n}x{x}")), &(n, x), |b, &(n, x)| {
            b.iter_batched(
                || GroupConsensus::<u64>::new(n, x).unwrap(),
                |cons| {
                    let times = apc_bench::timed_threads(n, |pid| {
                        let _ = cons.propose(pid, pid as u64).unwrap();
                    });
                    black_box(times)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn first_group_sweep(c: &mut Criterion) {
    // n = 8, x = 2 → 4 groups; participants drawn from group y only.
    let mut g = c.benchmark_group("E9/first-group-index");
    g.sample_size(10);
    for y in [1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::new("suffix-from-group", y), &y, |b, &y| {
            b.iter_batched(
                || GroupConsensus::<u64>::new(8, 2).unwrap(),
                |cons| {
                    let start = (y - 1) * 2;
                    let times = apc_bench::timed_threads(8 - start, |i| {
                        let pid = start + i;
                        let _ = cons.propose(pid, pid as u64).unwrap();
                    });
                    black_box(times)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn solo_by_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9/solo-propose-by-group");
    for y in [1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::new("group", y), &y, |b, &y| {
            b.iter_batched(
                || GroupConsensus::<u64>::new(8, 2).unwrap(),
                |cons| {
                    let pid = (y - 1) * 2;
                    black_box(cons.propose(pid, 7).unwrap())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, all_participate, first_group_sweep, solo_by_group);
criterion_main!(benches);
