//! Substrate benches: the register layer everything else stands on.
//!
//! Series:
//! * epoch-reclaimed `AtomicCell` vs allocation-free `PackedRegister`
//!   (the cost of generality);
//! * `StampedCell` pair swings;
//! * wait-free snapshot scan/update as components grow — the classic
//!   register-only object, quadratic-ish scans by construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use apc_registers::collect::StoreCollect;
use apc_registers::snapshot::SwmrSnapshot;
use apc_registers::{AtomicCell, PackedRegister, Stamped, StampedCell};

fn cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/cells");
    let cell = AtomicCell::with_value(1u64);
    g.bench_function("atomic-cell-load", |b| b.iter(|| black_box(cell.load())));
    g.bench_function("atomic-cell-store", |b| b.iter(|| cell.store(black_box(2))));
    g.bench_function("atomic-cell-swap", |b| b.iter(|| black_box(cell.swap(3))));
    let packed = PackedRegister::with_value(1);
    g.bench_function("packed-load", |b| b.iter(|| black_box(packed.load())));
    g.bench_function("packed-store", |b| b.iter(|| packed.store(black_box(2))));
    let stamped = StampedCell::new();
    stamped.store(Stamped::new(0, 5u64));
    g.bench_function("stamped-store", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            stamped.store(Stamped::new(i, 5))
        })
    });
    g.finish();
}

fn collect_and_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/collect-snapshot");
    for n in [4usize, 16, 64] {
        let sc: StoreCollect<u64> = StoreCollect::new(n);
        for i in 0..n {
            sc.store(i, i as u64);
        }
        g.bench_with_input(BenchmarkId::new("store-collect", n), &n, |b, _| {
            b.iter(|| black_box(sc.collect()))
        });
        let snap = SwmrSnapshot::new(n, 0u64);
        for i in 0..n {
            snap.update(i, i as u64);
        }
        g.bench_with_input(BenchmarkId::new("snapshot-scan", n), &n, |b, _| {
            b.iter(|| black_box(snap.scan()))
        });
        g.bench_with_input(BenchmarkId::new("snapshot-update", n), &n, |b, _| {
            let mut v = 0;
            b.iter(|| {
                v += 1;
                snap.update(0, v)
            })
        });
    }
    g.finish();
}

fn snapshot_under_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/snapshot-contended");
    g.sample_size(10);
    for writers in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("scan-vs-writers", writers),
            &writers,
            |b, &writers| {
                b.iter_batched(
                    || SwmrSnapshot::new(writers + 1, 0u64),
                    |snap| {
                        let times = apc_bench::timed_threads(writers + 1, |pid| {
                            if pid < writers {
                                for v in 0..50 {
                                    snap.update(pid, v);
                                }
                            } else {
                                for _ in 0..50 {
                                    let _ = black_box(snap.scan());
                                }
                            }
                        });
                        black_box(times)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, cells, collect_and_snapshot, snapshot_under_contention);
criterion_main!(benches);
