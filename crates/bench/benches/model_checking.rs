//! Experiments E3/E5: the cost of the theorem machinery itself.
//!
//! Series:
//! * exhaustive verification cost of the hierarchy's constructive direction
//!   as `x` grows (state-space growth is the real wall);
//! * non-termination certificate discovery (Theorem 2's adversary) — cheap,
//!   because lockstep state spaces are tiny;
//! * valence-oracle queries (the inner loop of the Theorem 1 adversary);
//! * full exhaustive exploration of the arbiter and the group algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use apc_core::arbiter::model::arbiter_system;
use apc_core::consensus::model::binary_register_consensus;
use apc_core::group::model::group_system;
use apc_core::group::GroupLayout;
use apc_hierarchy::{theorem2, theorem3};
use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults};
use apc_model::ProcessSet;

fn hierarchy_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3/verification-cost");
    g.sample_size(10);
    for x in [0usize, 1, 2] {
        g.bench_with_input(BenchmarkId::new("constructive", x), &x, |b, &x| {
            b.iter(|| black_box(theorem3::theorem3_constructive(x, 1, 1)))
        });
    }
    for x in [0usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("negative-certificate", x), &x, |b, &x| {
            b.iter(|| black_box(theorem2::theorem2_scenario(x + 2, x, 1)))
        });
    }
    g.finish();
}

fn valence_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5/valence-oracle");
    g.sample_size(10);
    for rounds in [1usize, 2] {
        g.bench_with_input(
            BenchmarkId::new("register-consensus", rounds),
            &rounds,
            |b, &rounds| {
                let (sys, _) = binary_register_consensus(2, rounds);
                let explorer = Explorer::new(
                    ExploreConfig::default().with_max_states(500_000).with_max_depth(90),
                );
                b.iter(|| black_box(explorer.valence(&sys)))
            },
        );
    }
    g.finish();
}

fn exhaustive_exploration(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1-E2/exhaustive-exploration");
    g.sample_size(10);
    g.bench_function("arbiter-1v2-crash1", |b| {
        b.iter(|| {
            let (sys, _) =
                arbiter_system(3, ProcessSet::from_indices([0]), ProcessSet::from_indices([1, 2]));
            let explorer =
                Explorer::new(ExploreConfig::default().with_crashes(1, ProcessSet::first_n(3)));
            black_box(explorer.explore(&sys, &[&Agreement, &NoFaults]))
        })
    });
    g.bench_function("group-3x1-full", |b| {
        b.iter(|| {
            let layout = GroupLayout::new(3, 1).unwrap();
            let (sys, _) = group_system(layout, ProcessSet::first_n(3));
            let explorer = Explorer::new(ExploreConfig::default().with_max_states(3_000_000));
            black_box(explorer.explore(&sys, &[&Agreement, &NoFaults]))
        })
    });
    g.finish();
}

/// Ablation: the isolation-window parameter (how long "long enough in
/// isolation" is). Longer windows delay a solo guest's termination
/// linearly and do not affect the wait-free path at all — evidence that
/// the window choice in the negative experiments is not load-bearing.
fn window_ablation(c: &mut Criterion) {
    use apc_model::programs::ProposeProgram;
    use apc_model::{ProcessId, Runner, Schedule, SystemBuilder, Value};

    let mut g = c.benchmark_group("ablation/isolation-window");
    for window in [1u8, 4, 16] {
        g.bench_with_input(BenchmarkId::new("solo-guest-decides", window), &window, |b, &w| {
            b.iter(|| {
                let mut builder = SystemBuilder::new(2);
                let cons = builder.add_obstruction_free_consensus(ProcessSet::first_n(2), w);
                let sys =
                    builder.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
                let mut runner = Runner::new(sys);
                runner.run(&Schedule::solo(ProcessId::new(0), w as usize + 4));
                black_box(runner.system().decision(ProcessId::new(0)))
            })
        });
        g.bench_with_input(BenchmarkId::new("wait-free-unaffected", window), &window, |b, &w| {
            b.iter(|| {
                let mut builder = SystemBuilder::new(2);
                let cons = builder.add_live_consensus(
                    ProcessSet::first_n(2),
                    ProcessSet::from_indices([0]),
                    w,
                );
                let sys =
                    builder.build(|pid| ProposeProgram::new(cons, Value::Num(pid.index() as u32)));
                let mut runner = Runner::new(sys);
                runner.run(&Schedule::solo(ProcessId::new(0), 3));
                black_box(runner.system().decision(ProcessId::new(0)))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    hierarchy_verification,
    valence_oracle,
    exhaustive_exploration,
    window_ablation
);
criterion_main!(benches);
