//! Experiment E8: the asymmetric universal object — the hierarchy's
//! constructive face.
//!
//! Series:
//! * sequential ops/sec of the universal counter: wait-free cells vs
//!   asymmetric cells (same machinery, different progress conditions);
//! * under contention, per-class latency on an `(n,1)`-live universal
//!   object: the VIP's operations stay flat, guests degrade — the
//!   user-visible meaning of "wait-free for x, obstruction-free for the
//!   rest".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use apc_core::liveness::Liveness;
use apc_universal::seq::{Counter, CounterOp};
use apc_universal::{AsymmetricFactory, CasFactory, Universal};

fn sequential_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8/sequential-counter-ops");
    g.bench_function("wait-free-cells", |b| {
        b.iter_batched(
            || Universal::new(Counter, CasFactory::new(Liveness::new_first_n(4, 4)), 4),
            |obj| {
                let mut h = obj.handle(0).unwrap();
                for _ in 0..50 {
                    black_box(h.apply(CounterOp::Add(1)));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("asymmetric-cells-vip", |b| {
        b.iter_batched(
            || Universal::new(Counter, AsymmetricFactory::new(Liveness::new_first_n(4, 1)), 4),
            |obj| {
                let mut h = obj.handle(0).unwrap();
                for _ in 0..50 {
                    black_box(h.apply(CounterOp::Add(1)));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("asymmetric-cells-guest", |b| {
        b.iter_batched(
            || Universal::new(Counter, AsymmetricFactory::new(Liveness::new_first_n(4, 1)), 4),
            |obj| {
                let mut h = obj.handle(2).unwrap();
                for _ in 0..50 {
                    black_box(h.apply(CounterOp::Add(1)));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn contended_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8/contended-class-latency");
    g.sample_size(10);
    for guests in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("vip-plus-guests", guests), &guests, |b, &guests| {
            b.iter_batched(
                || {
                    Universal::new(
                        Counter,
                        AsymmetricFactory::new(Liveness::new_first_n(guests + 1, 1)),
                        guests + 1,
                    )
                },
                |obj| {
                    let times = apc_bench::timed_threads(guests + 1, |pid| {
                        let mut h = obj.handle(pid).unwrap();
                        for _ in 0..20 {
                            let _ = h.apply(CounterOp::Add(1));
                        }
                    });
                    // Position 0 is the VIP's wall time; the series compares
                    // it to the guests' mean.
                    black_box(times)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, sequential_ops, contended_classes);
criterion_main!(benches);
