//! Corollary 1: the `(n,x)`-liveness hierarchy, as a verdict table.
//!
//! ```text
//! (n,0) ≺ (n,1) ≺ … ≺ (n,x) ≺ … ≺ (n,n−1) ≃ (n,n)
//! ```
//!
//! For each liveness degree `x` the table records:
//!
//! * the consensus number claimed by Theorem 3 (`x+1`, or `n` at the top);
//! * whether the constructive direction was verified exhaustively
//!   (`(x+1,x)`-live object solves `x+1`-consensus — every schedule, every
//!   crash pattern within budget);
//! * whether the negative direction produced a machine-checked starvation
//!   certificate (`x+2` processes cannot all be served).
//!
//! [`hierarchy_table`] is what the `hierarchy-table` bench/example prints —
//! the repository's equivalent of the paper's central "table".

use std::fmt;

use apc_core::liveness::Liveness;

use crate::theorem3::{theorem3_constructive, theorem3_negative};

/// One row of the hierarchy table.
#[derive(Clone, Debug)]
pub struct HierarchyRow {
    /// Liveness degree `x`.
    pub x: usize,
    /// Consensus number per Theorem 3 (computed by
    /// [`Liveness::consensus_number`] on an `(x+2, x)` spec, i.e. `x+1`).
    pub consensus_number: usize,
    /// Constructive direction exhaustively verified?
    pub constructive_verified: bool,
    /// States explored in the constructive verification.
    pub states_explored: usize,
    /// Negative direction certificate found (guests provably starve)?
    pub negative_certified: bool,
}

impl fmt::Display for HierarchyRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "x={:2}  consensus#={}  solves {}-proc consensus: {}  cannot serve {}+: {}",
            self.x,
            self.consensus_number,
            self.x + 1,
            if self.constructive_verified { "verified" } else { "FAILED" },
            self.x + 2,
            if self.negative_certified { "certified" } else { "FAILED" },
        )
    }
}

/// Computes the hierarchy table for liveness degrees `0 ..= max_x`.
///
/// Cost grows quickly with `x` (the constructive direction explores all
/// schedules of `x+1` processes); `max_x ≤ 3` runs in seconds.
pub fn hierarchy_table(max_x: usize, window: u8) -> Vec<HierarchyRow> {
    (0..=max_x)
        .map(|x| {
            let constructive = theorem3_constructive(x, window, 1);
            let negative = theorem3_negative(x, window);
            let spec = Liveness::new_first_n(x + 2, x);
            HierarchyRow {
                x,
                consensus_number: spec.consensus_number(),
                constructive_verified: constructive.verified(),
                states_explored: constructive.states,
                negative_certified: negative.is_some(),
            }
        })
        .collect()
}

/// Renders the full table with a header (used by the example binaries).
pub fn render_table(rows: &[HierarchyRow]) -> String {
    let mut out = String::from(
        "The (n,x)-liveness hierarchy (Corollary 1): (n,0) ≺ (n,1) ≺ … ≺ (n,n−1) ≃ (n,n)\n",
    );
    for row in rows {
        out.push_str(&format!("  {row}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_verify_for_small_x() {
        let rows = hierarchy_table(2, 1);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.consensus_number, row.x + 1, "Theorem 3 arithmetic");
            assert!(row.constructive_verified, "constructive direction x={}", row.x);
            assert!(row.negative_certified, "negative direction x={}", row.x);
        }
    }

    #[test]
    fn rendered_table_mentions_hierarchy() {
        let rows = hierarchy_table(1, 1);
        let s = render_table(&rows);
        assert!(s.contains("Corollary 1"), "{s}");
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn strictness_of_hierarchy_in_liveness_type() {
        // The ≺ relation is strictly increasing in x below n−1.
        let n = 6;
        for x in 0..n - 2 {
            let lo = Liveness::new_first_n(n, x);
            let hi = Liveness::new_first_n(n, x + 1);
            assert!(lo.consensus_number() < hi.consensus_number());
        }
    }
}
