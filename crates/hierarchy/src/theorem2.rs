//! Theorem 2: `(n,x+1)`-live consensus is not constructible from
//! `(n,x)`-live consensus objects and registers.
//!
//! The proof's decisive scenario (§3.4): run any candidate implementation to
//! the point where all `n` processes are about to access the same non-register
//! base object `o` (which must exist by Lemma 6, and must be an `(n,x)`-live
//! consensus object); then **crash the `x` wait-free processes at the door
//! and run the remaining `n − x` guests in lockstep**. Obstruction-freedom
//! promises those guests nothing, yet the candidate implementation promised
//! `x + 1 > x` of them wait-freedom — contradiction.
//!
//! This module executes that scenario against the semantics-exact
//! `(n,x)`-live base object of `apc-model` and returns a
//! [`NonTerminationCertificate`]: the lockstep schedule provably loops
//! forever (the global state repeats), so the guests starve *forever*, not
//! just for a while.

use std::fmt;

use apc_model::cycle::{detect_cycle, CycleOutcome, NonTerminationCertificate};
use apc_model::programs::ProposeProgram;
use apc_model::{ProcessSet, Schedule, SystemBuilder, Value};

/// Outcome of the Theorem 2 scenario for one `(n,x)` configuration.
#[derive(Clone, Debug)]
pub struct Theorem2Report {
    /// Total processes `n`.
    pub n: usize,
    /// Wait-free set size `x` of the base object.
    pub x: usize,
    /// The starvation certificate (present = scenario confirmed).
    pub certificate: Option<NonTerminationCertificate>,
}

impl Theorem2Report {
    /// Whether the lockstep guests provably starve forever.
    pub fn starves(&self) -> bool {
        self.certificate.is_some()
    }
}

impl fmt::Display for Theorem2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.certificate {
            Some(cert) => write!(
                f,
                "Theorem 2 scenario (n={}, x={}): guests starve — {}",
                self.n, self.x, cert
            ),
            None => write!(
                f,
                "Theorem 2 scenario (n={}, x={}): no certificate found (unexpected)",
                self.n, self.x
            ),
        }
    }
}

/// Runs the Theorem 2 scenario: `n` processes propose to one `(n,x)`-live
/// base object (isolation window `window`); the `x` wait-free ports crash
/// before taking any step; the guests run in lockstep.
///
/// Returns the report with a non-termination certificate when the guests
/// provably loop (which the paper predicts whenever `n − x ≥ 2`).
///
/// # Panics
///
/// Panics if `x ≥ n` (the scenario needs at least one guest; with
/// `n − x = 1` the lone guest runs in isolation and decides — see
/// [`lone_guest_decides`]).
pub fn theorem2_scenario(n: usize, x: usize, window: u8) -> Theorem2Report {
    assert!(n >= 2 && x < n, "need at least one guest");
    let ports = ProcessSet::first_n(n);
    let wait_free = ProcessSet::first_n(x);
    let guests = ports.difference(wait_free);

    let mut builder = SystemBuilder::new(n);
    let object = builder.add_live_consensus(ports, wait_free, window);
    let mut system =
        builder.build(|pid| ProposeProgram::new(object, Value::Num(pid.index() as u32)));

    // Crash the wait-free set "just before all the processes access the
    // consensus object o" (§3.4) — here: before their first step.
    for pid in wait_free.iter() {
        system.crash(pid);
    }

    let period = Schedule::lockstep(guests.iter(), 1);
    let certificate = match detect_cycle(system, &period, 10_000) {
        CycleOutcome::Cycle(cert) => Some(cert),
        _ => None,
    };
    Theorem2Report { n, x, certificate }
}

/// The complement run: with the wait-free processes alive, the same
/// schedule plus their steps terminates (everyone decides). Returns whether
/// all scheduled processes decided.
pub fn theorem2_complement(n: usize, x: usize, window: u8) -> bool {
    let ports = ProcessSet::first_n(n);
    let wait_free = ProcessSet::first_n(x);
    let mut builder = SystemBuilder::new(n);
    let object = builder.add_live_consensus(ports, wait_free, window);
    let system = builder.build(|pid| ProposeProgram::new(object, Value::Num(pid.index() as u32)));
    let period = Schedule::lockstep(ports.iter(), 1);
    detect_cycle(system, &period, 10_000).terminated()
}

/// The boundary case `n − x = 1`: a single guest is always "in isolation",
/// so it decides — this is why Theorem 2 needs `n − x > 1` (its proof says
/// "if `n − x > 1`, these processes may never run in isolation").
/// Returns whether the lone guest decided.
pub fn lone_guest_decides(n: usize, window: u8) -> bool {
    assert!(n >= 2);
    let x = n - 1;
    let ports = ProcessSet::first_n(n);
    let wait_free = ProcessSet::first_n(x);
    let mut builder = SystemBuilder::new(n);
    let object = builder.add_live_consensus(ports, wait_free, window);
    let mut system =
        builder.build(|pid| ProposeProgram::new(object, Value::Num(pid.index() as u32)));
    for pid in wait_free.iter() {
        system.crash(pid);
    }
    let lone = ProcessSet::first_n(n).difference(wait_free);
    let period = Schedule::lockstep(lone.iter(), 1);
    detect_cycle(system, &period, 10_000).terminated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guests_starve_for_small_configs() {
        for (n, x) in [(2, 0), (3, 0), (3, 1), (4, 1), (4, 2), (5, 3)] {
            let report = theorem2_scenario(n, x, 1);
            assert!(report.starves(), "expected starvation for (n,x)=({n},{x}): {report}");
            let cert = report.certificate.as_ref().unwrap();
            assert_eq!(cert.live_forever.len(), n - x, "all guests starve");
        }
    }

    #[test]
    fn bigger_isolation_window_also_starves() {
        let report = theorem2_scenario(4, 1, 3);
        assert!(report.starves(), "{report}");
    }

    #[test]
    fn complement_terminates_with_wait_free_alive() {
        for (n, x) in [(3, 1), (4, 2)] {
            assert!(theorem2_complement(n, x, 1), "(n,x)=({n},{x}) should terminate");
        }
    }

    #[test]
    fn lone_guest_is_in_isolation() {
        for n in [2, 3, 5] {
            assert!(lone_guest_decides(n, 1), "lone guest must decide for n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one guest")]
    fn rejects_no_guest_configs() {
        let _ = theorem2_scenario(3, 3, 1);
    }

    #[test]
    fn report_display() {
        let report = theorem2_scenario(3, 1, 1);
        assert!(report.to_string().contains("Theorem 2"));
    }
}
