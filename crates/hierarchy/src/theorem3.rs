//! Theorem 3: the `(n,x)`-live consensus object has consensus number `x+1`.
//!
//! **Constructive direction** (`≥ x+1`): one `(x+1,x)`-live object solves
//! wait-free consensus among `x+1` processes. The `x` members of `X` are
//! wait-free outright; the lone guest terminates because once the wait-free
//! processes finish (they always do), it runs in isolation on the object.
//! [`theorem3_constructive`] verifies this **exhaustively**: over every
//! schedule and crash pattern, agreement and validity hold and no fair
//! livelock exists.
//!
//! **Negative direction** (`< x+2`): by Theorem 2's scenario, `x+2`
//! processes sharing an `(x+2,x)`-live object can be driven so that two
//! guests starve forever ([`theorem3_negative`] returns the certificate).

use std::fmt;

use apc_model::cycle::NonTerminationCertificate;
use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn};
use apc_model::fairness::{fair_termination, StateGraph};
use apc_model::programs::ProposeProgram;
use apc_model::{ProcessSet, SystemBuilder, Value};

use crate::theorem2::theorem2_scenario;

/// Outcome of the constructive-direction verification for one `x`.
#[derive(Clone, Debug)]
pub struct ConstructiveReport {
    /// The liveness degree `x` of the base object.
    pub x: usize,
    /// Number of distinct global states explored.
    pub states: usize,
    /// Whether agreement + validity held at every reachable state.
    pub safety_ok: bool,
    /// Whether every fair run decides for every correct participant.
    pub termination_ok: bool,
    /// Whether any budget truncated the search (would weaken the claim).
    pub truncated: bool,
}

impl ConstructiveReport {
    /// Whether consensus for `x+1` processes was fully verified.
    pub fn verified(&self) -> bool {
        self.safety_ok && self.termination_ok && !self.truncated
    }
}

impl fmt::Display for ConstructiveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{})-live object solves {}-process consensus: safety {}, termination {} \
             ({} states{})",
            self.x + 1,
            self.x,
            self.x + 1,
            if self.safety_ok { "verified" } else { "VIOLATED" },
            if self.termination_ok { "verified" } else { "VIOLATED" },
            self.states,
            if self.truncated { ", TRUNCATED" } else { "" },
        )
    }
}

/// Exhaustively verifies the constructive direction for liveness degree `x`:
/// `x+1` processes, one `(x+1,x)`-live object, everyone proposes.
///
/// With `crash_budget` crashes available to the adversary (crashed processes
/// are exempt from the termination obligation).
pub fn theorem3_constructive(x: usize, window: u8, crash_budget: usize) -> ConstructiveReport {
    let n = x + 1;
    let ports = ProcessSet::first_n(n);
    let wait_free = ProcessSet::first_n(x);
    let mut builder = SystemBuilder::new(n);
    let object = builder.add_live_consensus(ports, wait_free, window);
    let system = builder.build(|pid| ProposeProgram::new(object, Value::Num(pid.index() as u32)));

    // Safety: every schedule, with the crash adversary.
    let explorer = Explorer::new(
        ExploreConfig::default().with_max_states(2_000_000).with_crashes(crash_budget, ports),
    );
    let proposals: Vec<Value> = (0..n).map(|i| Value::Num(i as u32)).collect();
    let exploration =
        explorer.explore(&system, &[&Agreement, &ValidityIn::new(proposals), &NoFaults]);

    // Fair termination: no crash transitions in the graph (correct
    // processes); crashes are covered by re-running from crashed prefixes in
    // the exploration above.
    let graph = StateGraph::build(&system, 2_000_000);
    let verdict = fair_termination(&graph, |_| true);

    ConstructiveReport {
        x,
        states: exploration.states,
        safety_ok: exploration.ok(),
        termination_ok: verdict.holds(),
        truncated: exploration.truncated || graph.truncated(),
    }
}

/// The negative direction for liveness degree `x`: the Theorem 2 scenario
/// with `n = x+2` — two guests starve forever. Returns the certificate.
pub fn theorem3_negative(x: usize, window: u8) -> Option<NonTerminationCertificate> {
    theorem2_scenario(x + 2, x, window).certificate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructive_direction_x1() {
        let report = theorem3_constructive(1, 1, 1);
        assert!(report.verified(), "{report}");
    }

    #[test]
    fn constructive_direction_x2() {
        let report = theorem3_constructive(2, 1, 1);
        assert!(report.verified(), "{report}");
    }

    #[test]
    fn constructive_direction_x0_is_trivial() {
        // (1,0)-live: a single guest always runs in isolation.
        let report = theorem3_constructive(0, 1, 0);
        assert!(report.verified(), "{report}");
    }

    #[test]
    fn negative_direction_produces_certificates() {
        for x in 0..3 {
            let cert = theorem3_negative(x, 1);
            assert!(cert.is_some(), "x={x} must yield a starvation certificate");
            assert_eq!(cert.unwrap().live_forever.len(), 2, "exactly the two guests starve");
        }
    }

    #[test]
    fn report_display_mentions_verification() {
        let report = theorem3_constructive(1, 1, 0);
        assert!(report.to_string().contains("verified"), "{report}");
    }
}
