//! Theorem 4: no consensus object can be both obstruction-free for all
//! processes and fault-free for even one process, from `(n−1,n−1)`-live
//! objects and registers.
//!
//! *Fault-freedom* requires a decision when **all** processes participate
//! and none crashes. Lemma 7 adapts the bivalence discipline to that
//! setting: the adversary extends the run with bivalence-preserving steps,
//! **cycling round-robin over all processes** so that the constructed run is
//! fault-free (everyone keeps taking steps) yet never decides.
//!
//! [`fault_freedom_adversary`] executes this discipline against the
//! register-based consensus protocol: all processes participate, none
//! crashes, every process takes infinitely many steps (up to the horizon) —
//! and the run stays bivalent, so no one has decided.

use std::fmt;

use apc_core::consensus::model::binary_register_consensus;
use apc_model::explore::{ExploreConfig, Explorer};
use apc_model::{ProcessId, Schedule, System};

/// Outcome of the Lemma 7 round-robin bivalence discipline.
#[derive(Clone, Debug)]
pub struct FaultFreedomReport {
    /// Number of processes.
    pub n: usize,
    /// Steps executed while maintaining bivalence.
    pub steps: usize,
    /// The requested horizon.
    pub target: usize,
    /// Steps taken by each process (fault-freedom requires all > 0 and
    /// growing with the horizon).
    pub steps_per_process: Vec<usize>,
    /// Whether the final state is still provably bivalent.
    pub still_bivalent: bool,
    /// The constructed fault-free schedule.
    pub schedule: Schedule,
}

impl FaultFreedomReport {
    /// Whether the adversary built a fault-free bivalent run of the full
    /// horizon: every process stepped, nobody decided.
    pub fn starved_fault_free(&self) -> bool {
        self.steps >= self.target
            && self.still_bivalent
            && self.steps_per_process.iter().all(|&s| s > 0)
    }
}

impl fmt::Display for FaultFreedomReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Lemma 7 discipline (n={}): {}/{} steps, per-process {:?}, still bivalent: {}",
            self.n, self.steps, self.target, self.steps_per_process, self.still_bivalent
        )
    }
}

/// Runs Lemma 7's round-robin bivalence-preserving discipline against the
/// `n`-process register consensus for up to `target` steps.
///
/// At each turn the adversary must extend the run by an event of the
/// *scheduled* process `p_i` (cycling `i`) such that some bivalent
/// continuation survives; it searches for a prefix of other-process events
/// followed by `p_i`'s event, all bivalence-preserving — exactly the
/// `x ← y p_i` of Lemma 7's proof.
pub fn fault_freedom_adversary(n: usize, rounds: usize, target: usize) -> FaultFreedomReport {
    let (sys, _) = binary_register_consensus(n, rounds);
    let explorer =
        Explorer::new(ExploreConfig::default().with_max_states(400_000).with_max_depth(90));
    let mut state = sys;
    let mut schedule = Schedule::new();
    let mut steps_per_process = vec![0usize; n];
    let mut steps = 0usize;
    let mut turn = 0usize;

    if !explorer.valence(&state).is_bivalent() {
        return FaultFreedomReport {
            n,
            steps: 0,
            target,
            steps_per_process,
            still_bivalent: false,
            schedule,
        };
    }

    'outer: while steps < target {
        let pid = ProcessId::new(turn % n);
        // Find a bivalent extension whose LAST event is by `pid`:
        // BFS over short prefixes of other processes' steps.
        let mut queue = std::collections::VecDeque::new();
        let mut visited = std::collections::HashSet::new();
        visited.insert(state.clone());
        queue.push_back((state.clone(), Vec::<ProcessId>::new()));
        while let Some((s, prefix)) = queue.pop_front() {
            // Candidate: step pid now.
            if s.status(pid).is_live() {
                let mut cand = s.clone();
                cand.step(pid);
                if explorer.valence(&cand).is_bivalent() {
                    for &q in &prefix {
                        schedule.push_step(q);
                        steps_per_process[q.index()] += 1;
                        steps += 1;
                    }
                    schedule.push_step(pid);
                    steps_per_process[pid.index()] += 1;
                    steps += 1;
                    state = cand;
                    turn += 1;
                    continue 'outer;
                }
            }
            if prefix.len() >= 5 {
                continue;
            }
            for q in s.live_set().iter() {
                if q == pid {
                    continue;
                }
                let mut next = s.clone();
                next.step(q);
                if visited.insert(next.clone()) {
                    let mut np = prefix.clone();
                    np.push(q);
                    queue.push_back((next, np));
                }
            }
        }
        // No bivalent extension through pid found: the discipline halts
        // (for a correct consensus object this is where a decider appears).
        break;
    }

    let still_bivalent = explorer.valence(&state).is_bivalent();
    FaultFreedomReport { n, steps, target, steps_per_process, still_bivalent, schedule }
}

/// Sanity complement: without an adversary (plain round-robin), the same
/// system decides — obstruction-freedom alone is not the obstacle, the
/// adversarial schedule is. Returns whether all processes decided.
pub fn fault_free_round_robin_decides(n: usize, rounds: usize, max_events: usize) -> bool {
    let (sys, _) = binary_register_consensus(n, rounds);
    let mut runner = apc_model::Runner::new(sys);
    runner.run_until_terminated(&Schedule::round_robin(n, 1), max_events)
}

/// Helper used by examples: the final undecided system of an adversary run.
pub fn starved_system(
    n: usize,
    rounds: usize,
    target: usize,
) -> Option<System<impl apc_model::Program>> {
    let report = fault_freedom_adversary(n, rounds, target);
    if !report.starved_fault_free() {
        return None;
    }
    let (sys, _) = binary_register_consensus(n, rounds);
    let mut runner = apc_model::Runner::new(sys);
    runner.run(&report.schedule);
    Some(runner.system().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_discipline_starves_two_processes() {
        let report = fault_freedom_adversary(2, 10, 24);
        assert!(report.starved_fault_free(), "{report}");
        // Fault-freedom: both processes took steps.
        assert!(report.steps_per_process.iter().all(|&s| s >= 2), "{report}");
    }

    #[test]
    fn plain_round_robin_decides() {
        assert!(fault_free_round_robin_decides(2, 8, 2000));
    }

    #[test]
    fn starved_system_is_undecided() {
        let sys = starved_system(2, 10, 16).expect("adversary succeeds");
        assert!(sys.decisions().is_empty(), "nobody decided in the starved run");
        assert_eq!(sys.live_set().len(), 2, "both processes still live");
    }

    #[test]
    fn report_display() {
        let report = fault_freedom_adversary(2, 6, 4);
        assert!(report.to_string().contains("Lemma 7"));
    }
}
