//! §3.2: on second strongest objects.
//!
//! Gafni & Kuznetsov showed that under *symmetric* progress conditions,
//! `(n−1)`-process wait-free consensus (an `(n−1,n−1)`-live object) is the
//! second strongest object in an `n`-process system. The paper observes
//! that asymmetric conditions break this: the `(n,n−1)`-live object —
//! same number of wait-free ports, but *one extra obstruction-free port* —
//! is **strictly stronger**: it solves wait-free consensus for all `n`
//! processes (consensus number `n`), while the `(n−1,n−1)`-live object
//! cannot even be accessed by process `n`.
//!
//! Both halves are made executable here:
//!
//! * [`n_minus_one_wait_free_solves_n`] — exhaustive verification that one
//!   `(n,n−1)`-live base object yields `n`-process consensus (agreement,
//!   validity, fair termination): the extra guest terminates because the
//!   `n−1` wait-free ports always finish, leaving it in isolation.
//! * [`port_limited_object_excludes_a_process`] — the structural gap: an
//!   `(n−1,n−1)`-live object rejects process `n` outright, so any
//!   implementation for `n` processes must fall back to registers for it —
//!   and Theorem 1's adversary handles the rest.

use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn};
use apc_model::fairness::{fair_termination, StateGraph};
use apc_model::programs::ProposeProgram;
use apc_model::{Fault, ProcessSet, Runner, Schedule, SystemBuilder, Value};

/// Exhaustively verifies that a single `(n,n−1)`-live base object solves
/// wait-free consensus for `n` processes (the "stronger" half of §3.2).
/// Returns `(states_explored, verified)`.
pub fn n_minus_one_wait_free_solves_n(n: usize, window: u8) -> (usize, bool) {
    assert!(n >= 2, "need at least two processes");
    let ports = ProcessSet::first_n(n);
    let wait_free = ProcessSet::first_n(n - 1);
    let mut builder = SystemBuilder::new(n);
    let object = builder.add_live_consensus(ports, wait_free, window);
    let system = builder.build(|pid| ProposeProgram::new(object, Value::Num(pid.index() as u32)));

    let explorer =
        Explorer::new(ExploreConfig::default().with_max_states(2_000_000).with_crashes(1, ports));
    let proposals: Vec<Value> = (0..n).map(|i| Value::Num(i as u32)).collect();
    let exploration =
        explorer.explore(&system, &[&Agreement, &ValidityIn::new(proposals), &NoFaults]);

    let graph = StateGraph::build(&system, 2_000_000);
    let verdict = fair_termination(&graph, |_| true);

    let verified =
        exploration.ok() && verdict.holds() && !exploration.truncated && !graph.truncated();
    (exploration.states, verified)
}

/// The structural gap of the `(n−1,n−1)`-live object: process `n−1`
/// (0-indexed) is not a port and its proposal faults immediately.
/// Returns `true` if the exclusion is enforced.
pub fn port_limited_object_excludes_a_process(n: usize) -> bool {
    assert!(n >= 2);
    let ports = ProcessSet::first_n(n - 1); // (n−1, n−1)-live: process n−1 excluded
    let mut builder = SystemBuilder::new(n);
    let object = builder.add_live_consensus(ports, ports, 1);
    let system = builder.build(|pid| ProposeProgram::new(object, Value::Num(pid.index() as u32)));
    let mut runner = Runner::new(system);
    runner.run(&Schedule::round_robin(n, 2));
    matches!(runner.system().first_fault().map(|e| e.fault), Some(Fault::NotAPort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_n_minus_one_has_consensus_number_n() {
        // (3,2)-live solves 3-process consensus — exhaustively.
        let (states, verified) = n_minus_one_wait_free_solves_n(3, 1);
        assert!(verified, "explored {states} states");
        // And (2,1)-live solves 2-process consensus.
        let (_, verified) = n_minus_one_wait_free_solves_n(2, 1);
        assert!(verified);
    }

    #[test]
    fn consensus_number_arithmetic_matches() {
        use apc_core::liveness::Liveness;
        // (n,n−1) ≃ (n,n) at the top (both consensus number n), strictly
        // above (n−1,n−1) which tops out at n−1.
        for n in 2..10 {
            let asym = Liveness::new_first_n(n, n - 1);
            let sym = Liveness::new_first_n(n - 1, n - 1);
            assert_eq!(asym.consensus_number(), n);
            assert_eq!(sym.consensus_number(), n - 1);
            assert!(asym.consensus_number() > sym.consensus_number());
        }
    }

    #[test]
    fn excluded_process_faults() {
        for n in [2, 3, 5] {
            assert!(port_limited_object_excludes_a_process(n), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_degenerate_n() {
        let _ = n_minus_one_wait_free_solves_n(1, 1);
    }
}
