//! Theorem 1's machinery: valence, deciders, and the bivalence-preserving
//! adversary (Lemmas 3–6).
//!
//! Theorem 1 states that an `(n,1)`-live consensus object cannot be built
//! from `(n−1,n−1)`-live consensus objects and registers. Its proof engine
//! is the valence analysis of §3.3–3.4: any implementation whose events are
//! register accesses can be *steered* by an adversary that always extends
//! the run to a bivalent successor, so the process that is supposed to be
//! wait-free never gets to decide.
//!
//! This module makes that adversary concrete against the repository's own
//! register-based consensus protocol
//! ([`apc_core::consensus::model::RegisterConsensusProgram`]): the adversary
//! consults the explorer's valence oracle and picks steps that keep the run
//! bivalent. The paper proves it can do so forever; the demonstration keeps
//! it alive for a configurable horizon and reports the schedule it built.

use std::fmt;

use apc_core::consensus::model::binary_register_consensus;
use apc_model::explore::{ExploreConfig, Explorer, Valence};
use apc_model::{Program, Schedule, ScheduleEvent, System};

/// Outcome of driving the bivalence-preserving adversary.
#[derive(Clone, Debug)]
pub struct AdversaryReport {
    /// Steps executed while maintaining bivalence.
    pub steps: usize,
    /// The step horizon that was requested.
    pub target: usize,
    /// Whether the final state is still (provably) bivalent.
    pub still_bivalent: bool,
    /// The adversarial schedule that was constructed.
    pub schedule: Schedule,
}

impl AdversaryReport {
    /// Whether the adversary met the horizon with bivalence intact.
    pub fn starved(&self) -> bool {
        self.steps >= self.target && self.still_bivalent
    }
}

impl fmt::Display for AdversaryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bivalence-preserving adversary: {}/{} steps, still bivalent: {}",
            self.steps, self.target, self.still_bivalent
        )
    }
}

/// Drives the bivalence-preserving scheduling discipline (the `repeat` loop
/// in Lemma 4's proof) against `system` for up to `target` steps.
///
/// At each point the adversary searches for a one-step extension that is
/// still bivalent (falling back to a short breadth-first search for a
/// bivalent descendant); if none exists within the oracle's bounds it stops
/// early.
pub fn bivalence_adversary<P: Program>(
    system: System<P>,
    oracle: ExploreConfig,
    target: usize,
) -> AdversaryReport {
    let explorer = Explorer::new(oracle);
    let mut state = system;
    let mut schedule = Schedule::new();
    if !explorer.valence(&state).is_bivalent() {
        return AdversaryReport { steps: 0, target, still_bivalent: false, schedule };
    }
    let mut steps = 0usize;
    'outer: while steps < target {
        // Try one-step extensions first.
        for pid in state.live_set().iter() {
            let mut next = state.clone();
            next.step(pid);
            if explorer.valence(&next).is_bivalent() {
                state = next;
                schedule.push_step(pid);
                steps += 1;
                continue 'outer;
            }
        }
        // No single step preserves bivalence: breadth-first search for the
        // nearest bivalent descendant (the lemma allows multi-event
        // extensions).
        match bfs_bivalent(&explorer, &state, 6) {
            Some((next, ext)) => {
                steps += ext.len();
                for e in ext {
                    if let ScheduleEvent::Step(p) = e {
                        schedule.push_step(p);
                    }
                }
                state = next;
            }
            None => break,
        }
    }
    let still_bivalent = explorer.valence(&state).is_bivalent();
    AdversaryReport { steps, target, still_bivalent, schedule }
}

fn bfs_bivalent<P: Program>(
    explorer: &Explorer,
    state: &System<P>,
    max_depth: usize,
) -> Option<(System<P>, Vec<ScheduleEvent>)> {
    let mut queue = std::collections::VecDeque::new();
    let mut visited = std::collections::HashSet::new();
    visited.insert(state.clone());
    queue.push_back((state.clone(), Vec::new()));
    while let Some((s, path)) = queue.pop_front() {
        if path.len() >= max_depth {
            continue;
        }
        for pid in s.live_set().iter() {
            let mut next = s.clone();
            next.step(pid);
            if !visited.insert(next.clone()) {
                continue;
            }
            let mut next_path = path.clone();
            next_path.push(ScheduleEvent::Step(pid));
            if !next_path.is_empty() && explorer.valence(&next).is_bivalent() {
                return Some((next, next_path));
            }
            queue.push_back((next, next_path));
        }
    }
    None
}

/// The Lemma 3 demonstration: the empty run of the register-based consensus
/// with mixed binary inputs is bivalent; with unanimous inputs it is
/// univalent.
pub fn lemma3_bivalent_empty_run(n: usize, rounds: usize) -> Valence {
    let (sys, _) = binary_register_consensus(n, rounds);
    let explorer = Explorer::new(lemma_oracle());
    explorer.valence(&sys)
}

/// The Theorem 1 starvation demonstration: the adversary keeps the
/// register-based 2-process consensus undecided for `target` steps.
///
/// Under Theorem 1, if the protocol granted wait-freedom to either process,
/// this adversary could not exist; its success for any horizon is the
/// executable content of "registers give obstruction-freedom at best".
pub fn theorem1_starvation(target: usize) -> AdversaryReport {
    // Enough pre-allocated rounds that the adversary, not round exhaustion,
    // is the binding constraint.
    let (sys, _) = binary_register_consensus(2, 10);
    bivalence_adversary(sys, lemma_oracle(), target)
}

fn lemma_oracle() -> ExploreConfig {
    ExploreConfig::default().with_max_states(400_000).with_max_depth(90)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::explore::Valence;

    #[test]
    fn lemma3_mixed_inputs_bivalent() {
        assert!(matches!(lemma3_bivalent_empty_run(2, 2), Valence::Bivalent(_)));
    }

    #[test]
    fn adversary_starves_register_consensus() {
        let report = theorem1_starvation(30);
        assert!(report.starved(), "{report}");
        assert!(report.schedule.len() >= 30);
    }

    #[test]
    fn adversary_reports_univalent_start() {
        use apc_core::consensus::model::register_consensus_system;
        let (sys, _) = register_consensus_system(&[Some(5), Some(5)], 2);
        let report = bivalence_adversary(sys, lemma_oracle(), 10);
        assert_eq!(report.steps, 0);
        assert!(!report.still_bivalent);
        assert!(!report.starved());
    }

    #[test]
    fn display_is_informative() {
        let report = theorem1_starvation(5);
        let s = report.to_string();
        assert!(s.contains("bivalence"), "{s}");
    }
}
