//! # `apc-hierarchy` — the paper's theorems, executable
//!
//! Each module turns one result of *On Asymmetric Progress Conditions* into
//! runnable machinery with machine-checkable outcomes:
//!
//! | module | paper result | outcome artifact |
//! |--------|--------------|------------------|
//! | [`theorem1`] | Theorem 1 + Lemmas 3–6 (valence machinery) | bivalent empty runs, decider points, a bivalence-preserving adversary that keeps register-based consensus undecided |
//! | [`theorem2`] | Theorem 2 (no `(n,x+1)` from `(n,x)`) | [`apc_model::cycle::NonTerminationCertificate`]s from the crash-the-wait-free-set + lockstep adversary |
//! | [`theorem3`] | Theorem 3 (consensus number `x+1`) | exhaustive verification of the constructive direction, certificates for the negative direction |
//! | [`theorem4`] | Theorem 4 (no obstruction-free + fault-free consensus from registers) | the round-robin bivalence discipline of Lemma 7, kept alive for a configurable horizon |
//! | [`corollary1`] | Corollary 1 (the hierarchy) | a verdict table sweeping `x` |
//!
//! Positive results are verified **exhaustively** at small `n` (every
//! schedule, every crash pattern in budget). Impossibility results come in
//! two strengths: *certificates* (a deterministic schedule that provably
//! loops forever, found by state-repeat detection) where the adversary is
//! finite-state, and *bounded evidence* (bivalence maintained for N steps)
//! where the paper's adversary needs unbounded memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corollary1;
pub mod second_strongest;
pub mod theorem1;
pub mod theorem2;
pub mod theorem3;
pub mod theorem4;
