//! The store itself: builder, shards, live splits, and client sessions.
//!
//! A [`Store`] is a set of independent shards, each a
//! [`Universal`]`<`[`ShardSpec`](crate::ops::ShardSpec)`>` driven by `(y,x)`-live
//! [`AsymmetricFactory`] consensus cells, fronted by the admission layer's
//! port discipline:
//!
//! * every shard exposes the same ports `0..y`; VIP clients own a wait-free
//!   port exclusively, guest clients multiplex onto shared guest ports
//!   (serialized per port by a mutex — the obstruction-free tier is also the
//!   queued tier);
//! * a client batch is split by the versioned
//!   [`ShardTopology`] into at most one log append per shard, so same-shard
//!   operations amortize consensus;
//! * each shard additionally maintains a wait-free
//!   [`SwmrSnapshot`] of per-port commit digests — the VIP dashboard path:
//!   reading store-wide statistics never touches the consensus log, so it
//!   completes even while guests hammer every shard.
//!
//! ## Live shard splits and merges
//!
//! The shard set is **elastic in both directions**: [`Store::split_shard`]
//! carves a hot shard in two without stopping commits, and
//! [`Store::merge_shard`] retires a cold child back into its parent — the
//! inverse bump. A split installs a [`SplitSpec`] record through the
//! shard's own consensus log inside a sealed
//! [`ReconfigRecord`](apc_universal::ReconfigRecord) cell, so it
//! linearizes against every concurrent VIP/guest batch: commits before the
//! bump migrate with the sealed state, commits after it bounce with
//! [`StoreResp::Moved`] and are re-planned by the client against the newly
//! published topology. A merge crosses **both** logs: a sealed
//! [`MergeSpec`] retirement through the child (draining its state,
//! bouncing stragglers) followed by a sealed [`AdoptSpec`] through the
//! parent (folding the drained entries in) — each seal doubles as that
//! log's checkpoint anchor, so a merge also compacts both logs. The
//! store's current `(topology, shards)` pair is one atomically-published
//! view; readers never lock to route.
//!
//! With [`StoreBuilder::elastic`], the store drives both itself: a policy
//! engine ([`ElasticityPolicy`]) rides the commit path, splitting on
//! sustained skew and merging cold children back, with hysteresis and a
//! cool-down epoch so oscillating load cannot thrash the topology.
//!
//! **Consistency:** operations within one shard are linearizable (they go
//! through that shard's universal log). A multi-shard batch commits
//! per-shard atomically but is not a single cross-shard atomic action;
//! broadcast scans are per-shard-consistent merges. Splits and merges
//! preserve all of this: an operation is applied exactly once — on the
//! shard that owns its key at its linearization point — or bounced and
//! retried, never both.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use apc_core::liveness::Liveness;
use apc_progress_macros::progress;
use apc_registers::snapshot::SwmrSnapshot;
use apc_registers::AtomicCell;
use apc_universal::{AsymmetricFactory, OwnedHandle, Universal};

use apc_obs::{MetricsSnapshot, Sample, SampleValue};

use crate::admission::{Admission, AdmissionConfig, AdmissionError, ClientTicket, ProgressClass};
use crate::api::{Request, Response, StoreError, TierCredential, UNBOUNDED_RETRIES};
use crate::elastic::{ElasticDecision, ElasticEngine, ElasticReport, ElasticityPolicy};
use crate::metrics::{elapsed_ns, StoreMetrics};
use crate::ops::{
    AdoptSpec, Batch, MergeSpec, ShardCmd, ShardState, SplitSpec, StoreOp, StoreResp,
};
use crate::router::{MergeError, ShardTopology};
use crate::wal::{DurabilityClass, DurabilityError, Wal, WalFrame};

/// The universal-object type backing one shard.
pub type ShardLog = Universal<crate::ops::ShardSpec, AsymmetricFactory>;

/// A monotone per-port commit digest published into the shard's wait-free
/// snapshot after every commit.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ShardDigest {
    /// Log cells replayed by the publishing port (monotone version).
    pub commits: u64,
    /// Number of live keys in the shard at publication time.
    pub entries: u64,
}

struct Shard {
    /// The shard's universal log (also co-owned by every port handle).
    log: Arc<ShardLog>,
    /// One slot per port; guests multiplex, VIPs own theirs exclusively.
    /// Each handle co-owns the shard's universal log.
    ports: Vec<Mutex<OwnedHandle<crate::ops::ShardSpec, AsymmetricFactory>>>,
    /// Per-port digests; single-writer per component (the port's mutex
    /// serializes writers sharing a port).
    stats: SwmrSnapshot<ShardDigest>,
    /// Commits since build, for the auto-checkpoint cadence.
    auto_commits: AtomicU64,
}

impl Shard {
    /// Publishes `handle`'s replayed position into the wait-free stats
    /// snapshot — every path that advances a port's replica (commits and
    /// reconfigurations alike) must publish, or the dashboard would keep
    /// reporting a drained shard's old entry count forever.
    fn publish_digest(
        &self,
        port: usize,
        handle: &OwnedHandle<crate::ops::ShardSpec, AsymmetricFactory>,
    ) {
        self.stats.update(
            port,
            ShardDigest {
                commits: handle.replayed_cells(),
                entries: handle.local_state().len() as u64,
            },
        );
    }

    /// Builds one shard over `ports` port slots, optionally resuming from a
    /// recovered `(state, log_index)` pair.
    fn build(
        spec: crate::ops::ShardSpec,
        liveness: Liveness,
        ports: usize,
        resume: Option<(ShardState, u64)>,
    ) -> Self {
        let log = match resume {
            Some((state, log_index)) => Arc::new(Universal::recovered(
                spec,
                AsymmetricFactory::new(liveness),
                ports,
                state,
                log_index,
            )),
            None => Arc::new(Universal::new(spec, AsymmetricFactory::new(liveness), ports)),
        };
        let port_slots = (0..ports)
            .map(|p| Mutex::new(log.owned_handle(p).expect("fresh log, every port available")))
            .collect();
        Shard {
            log,
            ports: port_slots,
            stats: SwmrSnapshot::new(ports, ShardDigest::default()),
            auto_commits: AtomicU64::new(0),
        }
    }
}

/// One atomically-published routing generation: the topology and the shard
/// handles it routes to. Everything a client needs to place and commit a
/// batch is reachable from one wait-free load of the current view.
struct StoreView {
    topology: ShardTopology,
    shards: Vec<Arc<Shard>>,
}

/// Configures and builds a [`Store`].
///
/// # Examples
///
/// ```
/// use apc_store::StoreBuilder;
///
/// let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
/// let vip = store.admit_vip().unwrap();
/// let mut client = store.client(vip);
/// assert_eq!(client.put("k", 7), None);
/// assert_eq!(client.get("k"), Some(7));
/// ```
#[derive(Copy, Clone, Debug)]
pub struct StoreBuilder {
    shards: usize,
    admission: AdmissionConfig,
    checkpoint_every: Option<u64>,
    elastic: Option<ElasticityPolicy>,
    view_wait: Duration,
}

impl Default for StoreBuilder {
    fn default() -> Self {
        StoreBuilder {
            shards: 4,
            admission: AdmissionConfig::default(),
            checkpoint_every: None,
            elastic: None,
            view_wait: Duration::from_secs(60),
        }
    }
}

impl StoreBuilder {
    /// A builder with the default sizing (4 shards, 2 VIP ports, 6 guest
    /// ports in cascade groups of 2).
    pub fn new() -> Self {
        StoreBuilder::default()
    }

    /// Sets the initial shard count `S` (shards may be added later by
    /// [`Store::split_shard`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the bounded wait-free VIP port count `x` (per shard).
    pub fn vip_capacity(mut self, x: usize) -> Self {
        self.admission.vip_capacity = x;
        self
    }

    /// Sets the guest port count (per shard).
    pub fn guest_ports(mut self, g: usize) -> Self {
        self.admission.guest_ports = g;
        self
    }

    /// Sets the guest arbiter-cascade group width.
    pub fn guest_group_width(mut self, w: usize) -> Self {
        self.admission.guest_group_width = w;
        self
    }

    /// Seals a checkpoint on a shard automatically every `k` commits to it
    /// (`0` disables the cadence, the default).
    ///
    /// The seal rides the shard's guest tier (and is skipped — not queued —
    /// when that port is busy, so the cadence is amortized, never
    /// blocking); each seal caps the shard log's memory and keeps
    /// fresh-handle replay O(delta) without any explicit
    /// [`Store::checkpoint`] call.
    pub fn checkpoint_every(mut self, k: u64) -> Self {
        self.checkpoint_every = (k > 0).then_some(k);
        self
    }

    /// Enables the **automatic elasticity driver**: every
    /// [`ElasticityPolicy::evaluate_every`] commits, the store evaluates
    /// the policy against its wait-free stats snapshots and performs a
    /// [`Store::split_shard`] on a melting shard or a
    /// [`Store::merge_shard`] on a cold, structurally eligible child — no
    /// manual call needed.
    ///
    /// The driver is passive and never blocks a wait-free commit: the
    /// evaluation rides whichever **guest-tier** commit crosses the
    /// cadence boundary (VIP threads never carry reconfiguration work —
    /// it would break their wait-free bound — so a store serving only
    /// VIPs never auto-reconfigures), skips itself under try-lock
    /// contention, and holds for the policy's cool-down after every
    /// reconfiguration, so oscillating load cannot thrash the topology
    /// (at most one reconfig per cool-down window).
    pub fn elastic(mut self, policy: ElasticityPolicy) -> Self {
        self.elastic = Some(policy);
        self
    }

    /// Bounds how long a client's `Moved` retry waits for a bumped
    /// topology to publish (default 60s). If the reconfiguration driver
    /// dies between installing its bump and publishing the view, affected
    /// operations degrade to the typed
    /// [`StoreResp::Unavailable`]
    /// response once the bound expires — the client thread is never
    /// aborted.
    pub fn view_wait_timeout(mut self, timeout: Duration) -> Self {
        self.view_wait = timeout;
        self
    }

    /// Builds the store: admission layer, topology, and `S` shard logs with
    /// their port pools and stats snapshots.
    ///
    /// # Errors
    ///
    /// Propagates [`AdmissionError::BadConfig`] for unrealizable sizings
    /// (including `shards == 0`).
    pub fn build(self) -> Result<Store, AdmissionError> {
        self.build_from(None, None)
    }

    /// Builds the store with an op-granular [`Wal`] attached: every commit
    /// logs its resolved effects between checkpoints, closing the
    /// since-last-snapshot crash window, and VIP sessions may opt into
    /// synchronous durability ([`Client::execute_durable`]). Pair the
    /// store with [`Persister::with_wal`](crate::persist::Persister::with_wal)
    /// so checkpoint seals rotate and truncate the log, and recover with
    /// [`StoreBuilder::recover_with_wal`].
    ///
    /// # Errors
    ///
    /// Same as [`StoreBuilder::build`].
    pub fn build_with_wal(self, wal: Arc<Wal>) -> Result<Store, AdmissionError> {
        self.build_from(None, Some(wal))
    }

    /// Rebuilds a store from a durable snapshot previously written by the
    /// [`persist`](crate::persist) layer (see
    /// [`Persister`](crate::persist::Persister) /
    /// [`StoreSnapshot::write_to`](crate::persist::StoreSnapshot::write_to)).
    ///
    /// The shard **topology** is taken from the snapshot — including every
    /// split installed before the flush, so post-split placement survives a
    /// crash — and the builder's own `shards` setting is ignored. The
    /// admission sizing (VIP capacity, guest ports) is taken from the
    /// builder: progress classes are a runtime serving choice, not
    /// persistent state. Each shard's universal log resumes at its
    /// checkpointed log index via [`Universal::recovered`], so boot-time
    /// replay work is O(delta), not O(history).
    ///
    /// # Errors
    ///
    /// [`RecoverError::Persist`](crate::persist::RecoverError::Persist) for
    /// any snapshot decode failure (missing file, bad magic/version,
    /// checksum mismatch, truncation),
    /// [`RecoverError::Admission`](crate::persist::RecoverError::Admission)
    /// for unrealizable admission sizings.
    /// Recovery first sweeps any orphaned `*.tmp` siblings a crash left
    /// next to the snapshot (a temp file that was written but never
    /// renamed is garbage by construction — it is neither trusted nor
    /// tripped over).
    pub fn recover(
        self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Store, crate::persist::RecoverError> {
        let path = path.as_ref();
        crate::persist::sweep_orphan_tmps(path);
        let snapshot = crate::persist::StoreSnapshot::read_from(path)?;
        Ok(self.build_from(Some(snapshot), None)?)
    }

    /// Full crash recovery: snapshot + WAL replay. Rebuilds the store from
    /// the snapshot at `path` (as [`StoreBuilder::recover`], including the
    /// orphaned-tmp sweep; a *missing* snapshot is a fresh store — the
    /// process may have died before its first checkpoint), then re-applies
    /// the effects `wal` recovered from the dead process's segments:
    /// frames sort into per-shard linearization order by their
    /// `(epoch, shard, cell)` stamps, collapse to one final effect per
    /// key, and replay **by key** through fresh routing — so replay is
    /// exact even across splits/merges installed after the snapshot, and
    /// idempotent where the snapshot already contains an effect. The
    /// replayed effects are re-logged into `wal`'s fresh segment, so a
    /// second crash during recovery loses nothing.
    ///
    /// On return, the store serves with `wal` attached (as
    /// [`StoreBuilder::build_with_wal`]).
    ///
    /// # Errors
    ///
    /// As [`StoreBuilder::recover`], except a missing snapshot file is not
    /// an error here. Corrupt WAL segments fail closed in
    /// [`Wal::open`] — before this is ever called.
    pub fn recover_with_wal(
        self,
        path: impl AsRef<std::path::Path>,
        wal: Arc<Wal>,
    ) -> Result<Store, crate::persist::RecoverError> {
        let path = path.as_ref();
        crate::persist::sweep_orphan_tmps(path);
        let snapshot = match crate::persist::StoreSnapshot::read_from(path) {
            Ok(snap) => Some(snap),
            Err(crate::persist::PersistError::Io {
                kind: std::io::ErrorKind::NotFound, ..
            }) => None,
            Err(e) => return Err(e.into()),
        };
        let recovery = wal.take_recovered();
        let store = self.build_from(snapshot, Some(wal))?;
        if let Some(recovery) = recovery {
            let effects = recovery.collapsed_effects();
            if !effects.is_empty() {
                let ops: Vec<StoreOp> = effects
                    .into_iter()
                    .map(|(key, effect)| match effect {
                        Some(value) => StoreOp::Put(key, value),
                        None => StoreOp::Remove(key),
                    })
                    .collect();
                // Replay rides a guest session: recovery is boot-time
                // work and must never consume a VIP port.
                store.client(store.admit_guest()).execute(ops);
            }
        }
        Ok(store)
    }

    fn build_from(
        self,
        snapshot: Option<crate::persist::StoreSnapshot>,
        wal: Option<Arc<Wal>>,
    ) -> Result<Store, AdmissionError> {
        let topology = match &snapshot {
            Some(snap) => snap.topology.clone(),
            None => {
                if self.shards == 0 {
                    return Err(AdmissionError::BadConfig("a store needs at least one shard"));
                }
                ShardTopology::fresh(self.shards)
            }
        };
        let admission = Admission::new(self.admission)?;
        let spec = admission.spec();
        let ports = admission.ports();
        let shards = (0..topology.shards())
            .map(|s| {
                let node = topology.node(s);
                let shard_spec =
                    crate::ops::ShardSpec { seed: node.seed, created_at: node.created_at };
                let resume = snapshot
                    .as_ref()
                    .map(|snap| (snap.shards[s].state.clone(), snap.shards[s].log_index));
                Arc::new(Shard::build(shard_spec, spec, ports, resume))
            })
            .collect();
        let store = Store {
            admission,
            view: AtomicCell::with_value(Arc::new(StoreView { topology, shards })),
            admin: Mutex::new(()),
            checkpoint_every: self.checkpoint_every,
            elastic: self.elastic.map(|policy| ElasticSlot {
                evaluate_every: policy.evaluate_every.max(1),
                engine: Mutex::new(ElasticEngine::new(policy)),
            }),
            total_commits: AtomicU64::new(0),
            metrics: StoreMetrics::new(),
            wal,
            view_wait: self.view_wait,
        };
        // The boot-time replay-work gauge: ~0 for a fresh build, O(delta)
        // past the anchors when recovering. Uncontended here — the store
        // has not been shared yet.
        store.metrics.set_recovery_replay_steps(store.replay_steps());
        Ok(store)
    }
}

/// The store-side half of the elasticity driver: the cadence and the
/// engine it ticks.
struct ElasticSlot {
    /// Commits between policy evaluations (cached outside the engine's
    /// mutex so the fast path never locks to check the cadence).
    evaluate_every: u64,
    engine: Mutex<ElasticEngine>,
}

/// Errors of [`Store::split_shard`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SplitError {
    /// The shard id does not exist in the current topology.
    NoSuchShard {
        /// The offending shard id.
        shard: usize,
        /// The current shard count.
        shards: usize,
    },
    /// The shard was retired by a merge; tombstones cannot split.
    RetiredShard {
        /// The offending shard id.
        shard: usize,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::NoSuchShard { shard, shards } => {
                write!(f, "no shard {shard} to split (store has {shards})")
            }
            SplitError::RetiredShard { shard } => {
                write!(f, "shard {shard} was retired by a merge and cannot split")
            }
        }
    }
}

impl std::error::Error for SplitError {}

/// An in-memory, sharded, progress-class-aware object service with live
/// hot-shard splitting.
///
/// See the [module docs](self) for the architecture and consistency model.
pub struct Store {
    admission: Admission,
    /// The current `(topology, shards)` generation; swapped atomically by
    /// splits and merges, loaded wait-free by every operation. Never `⊥`.
    view: AtomicCell<Arc<StoreView>>,
    /// Serializes admin operations (splits, merges, and store-wide
    /// checkpoints) so a durable snapshot's topology always matches its
    /// sealed states.
    admin: Mutex<()>,
    checkpoint_every: Option<u64>,
    /// The automatic elasticity driver, if configured.
    elastic: Option<ElasticSlot>,
    /// Commits across all shards since build — the elasticity cadence
    /// clock.
    total_commits: AtomicU64,
    /// The always-on metric registry; every record path is wait-free, so
    /// instrumentation never weakens a commit path's progress class.
    metrics: StoreMetrics,
    /// The op-granular WAL, if attached ([`StoreBuilder::build_with_wal`]
    /// / [`StoreBuilder::recover_with_wal`]): every commit logs its
    /// resolved effects, and VIP sessions may demand fsync'd durability
    /// ([`Client::execute_durable`]).
    wal: Option<Arc<Wal>>,
    /// Bound on a client's wait for a bumped-but-unpublished topology
    /// before degrading to [`StoreResp::Unavailable`].
    view_wait: Duration,
}

impl Store {
    /// Starts configuring a store.
    pub fn builder() -> StoreBuilder {
        StoreBuilder::new()
    }

    /// Admits a wait-free VIP client (bounded by the configured capacity).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::VipCapacityExhausted`] once all `x` ports are owned.
    #[progress(lock_free)]
    pub fn admit_vip(&self) -> Result<ClientTicket, AdmissionError> {
        self.admission.admit(ProgressClass::Vip)
    }

    /// Admits an obstruction-free guest client (never fails).
    #[progress(wait_free)]
    pub fn admit_guest(&self) -> ClientTicket {
        self.admission.admit_guest()
    }

    /// Opens a client session for `ticket`.
    pub fn client(&self, ticket: ClientTicket) -> Client<'_> {
        Client { store: self, ticket }
    }

    /// The current routing view (one wait-free load).
    fn current_view(&self) -> Arc<StoreView> {
        self.view.load().expect("the view is initialized and never cleared")
    }

    /// Waits for a view of at least `min_version`: the topology a `Moved`
    /// rejection pointed at. The split/merge driver publishes it right
    /// after installing the bump, so the wait is normally bounded by the
    /// driver's remaining migration work (microseconds in practice) and
    /// the first few yield-only spins catch it.
    ///
    /// The wait is **bounded** (`StoreBuilder::view_wait_timeout`): a
    /// yield, then exponential backoff sleeps capped at 1ms, until the
    /// deadline. `None` past the deadline means the reconfiguration
    /// driver died between installing its bump and publishing the
    /// topology (the store's one cross-thread obligation); the caller
    /// surfaces that as the typed [`StoreResp::Unavailable`] instead of
    /// aborting the client thread.
    #[progress(blocking)]
    fn view_at_least(&self, min_version: u64) -> Option<Arc<StoreView>> {
        let deadline = std::time::Instant::now() + self.view_wait;
        let mut backoff_ns: u64 = 0;
        loop {
            let view = self.current_view();
            if view.topology.version() >= min_version {
                return Some(view);
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            if backoff_ns == 0 {
                std::thread::yield_now();
                backoff_ns = 1_000;
            } else {
                std::thread::sleep(Duration::from_nanos(backoff_ns));
                backoff_ns = (backoff_ns * 2).min(1_000_000);
            }
        }
    }

    /// Number of shard slots in the current topology (live **and**
    /// retired — shard ids are dense and stable, so merged-away shards
    /// keep their slot as tombstones).
    pub fn shards(&self) -> usize {
        self.current_view().topology.shards()
    }

    /// Number of live (routable) shards in the current topology.
    pub fn live_shards(&self) -> usize {
        self.current_view().topology.live_shards()
    }

    /// A clone of the current shard topology (version, split tree, seeds).
    pub fn topology(&self) -> ShardTopology {
        self.current_view().topology.clone()
    }

    /// The per-shard liveness specification.
    pub fn spec(&self) -> Liveness {
        self.admission.spec()
    }

    /// The admission layer (capacity inspection, guest layout).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The shard owning `key` under the current topology.
    pub fn shard_of(&self, key: &str) -> usize {
        self.current_view().topology.shard_of(key)
    }

    /// Wait-free store-wide statistics: for each shard, the freshest
    /// per-port commit digest.
    ///
    /// This is the VIP dashboard path — it reads each shard's register-based
    /// [`SwmrSnapshot`] and never touches the consensus log, so it completes
    /// in a bounded number of steps regardless of guest contention. It is
    /// also the hot-shard detector: a shard whose `commits` digest runs away
    /// from the others is the one to [`split`](Store::split_shard).
    #[progress(wait_free)]
    pub fn snapshot_stats(&self) -> Vec<ShardDigest> {
        self.current_view()
            .shards
            .iter()
            .map(|shard| {
                shard.stats.scan().into_iter().max_by_key(|d| d.commits).unwrap_or_default()
            })
            .collect()
    }

    /// The **live** shard with the most committed log cells — the hot
    /// shard under a skewed workload, read wait-free from the stats
    /// snapshots (tombstones stop taking real traffic, so they are
    /// excluded no matter what their historical digests say).
    ///
    /// **Determinism:** ties — including the all-zero digests of an idle
    /// or freshly built store — resolve to the **lowest** live shard id.
    /// Root shards never retire, so the lowest live id always exists and
    /// the answer is stable across repeated calls on a quiescent store
    /// (it does not depend on iterator or `max_by` tie-breaking order).
    #[progress(wait_free)]
    pub fn hottest_shard(&self) -> usize {
        let view = self.current_view();
        let mut hottest: Option<(usize, u64)> = None;
        for (s, d) in self.snapshot_stats().into_iter().enumerate() {
            if !view.topology.is_live(s) {
                continue;
            }
            // Strict `>` keeps the lowest id among equally hot shards.
            match hottest {
                Some((_, best)) if d.commits <= best => {}
                _ => hottest = Some((s, d.commits)),
            }
        }
        match hottest {
            Some((s, _)) => s,
            None => 0,
        }
    }

    /// A wait-free scrape of every exported metric series: the registry's
    /// commit/reconfig/elastic instruments plus scrape-time topology
    /// gauges and the per-shard digest series, ready for
    /// [`encode_prometheus`](apc_obs::encode_prometheus).
    ///
    /// This is the dashboard entry point, and it keeps the VIP dashboard
    /// contract of [`Store::snapshot_stats`]: the whole scrape is a
    /// bounded number of the scraper's own steps — register snapshots and
    /// atomic loads only, never a consensus-log append, a port lock, or
    /// the elastic engine's mutex — so a monitoring poller can never
    /// steal progress from VIP clients. `apc-lint --deny` enforces this
    /// transitively.
    #[progress(wait_free)]
    pub fn scrape(&self) -> MetricsSnapshot {
        let view = self.current_view();
        let mut samples = self.metrics.samples();
        let gauges: [(&'static str, &'static str, u64); 4] = [
            (
                "store_topology_version",
                "Version of the currently published shard topology.",
                view.topology.version(),
            ),
            (
                "store_shards_total",
                "Shard slots in the topology (live and retired tombstones).",
                view.topology.shards() as u64,
            ),
            (
                "store_shards_live",
                "Live (routable) shards in the topology.",
                view.topology.live_shards() as u64,
            ),
            (
                "store_hottest_shard",
                "Live shard with the most committed log cells (lowest id on ties).",
                self.hottest_shard() as u64,
            ),
        ];
        for (name, help, value) in gauges {
            samples.push(Sample {
                name,
                help,
                labels: Vec::new(),
                value: SampleValue::Gauge(value),
            });
        }
        for (s, d) in self.snapshot_stats().into_iter().enumerate() {
            let labels = || {
                vec![("shard", format!("{s}")), ("live", format!("{}", view.topology.is_live(s)))]
            };
            samples.push(Sample {
                name: "store_shard_commits",
                help: "Committed log cells per shard (freshest port digest).",
                labels: labels(),
                value: SampleValue::Gauge(d.commits),
            });
            samples.push(Sample {
                name: "store_shard_entries",
                help: "Live keys per shard (freshest port digest).",
                labels: labels(),
                value: SampleValue::Gauge(d.entries),
            });
        }
        MetricsSnapshot { samples }
    }

    /// The running totals of the automatic elasticity driver, or `None`
    /// when the store was built without [`StoreBuilder::elastic`].
    #[progress(blocking)]
    pub fn elastic_report(&self) -> Option<ElasticReport> {
        self.elastic
            .as_ref()
            .map(|slot| slot.engine.lock().expect("elastic engine poisoned").report())
    }

    /// Splits shard `shard` **live**: commits keep flowing while the split
    /// installs. Returns the new shard's id.
    ///
    /// The sequence is:
    ///
    /// 1. compute the bumped topology (the new shard's rendezvous seed and
    ///    version);
    /// 2. install a [`SplitSpec`] bump through the split shard's own
    ///    consensus log inside a sealed reconfig cell
    ///    ([`OwnedHandle::reconfigure`]) — the linearization point of the
    ///    split. Everything committed before it is partitioned
    ///    deterministically (pairwise rendezvous); the keys the child wins
    ///    come back as the migration set, and the cell doubles as a
    ///    checkpoint anchor for the parent's log. Batches landing after the
    ///    bump under the old topology bounce with [`StoreResp::Moved`] and
    ///    are re-planned by their clients;
    /// 3. boot the child shard from the migrated entries (invisible to
    ///    routing until published, so initialization is uncontended);
    /// 4. atomically publish the new `(topology, shards)` view.
    ///
    /// The bump rides the guest tier of the split shard, so VIP ports never
    /// contend with it; placement is lock-free (each failed attempt is a
    /// client batch committing). Splits serialize with each other and with
    /// [`Store::checkpoint`] on the admin lock.
    ///
    /// # Errors
    ///
    /// [`SplitError::NoSuchShard`] if `shard` is out of range,
    /// [`SplitError::RetiredShard`] if a merge already tombstoned it.
    #[progress(blocking)]
    pub fn split_shard(&self, shard: usize) -> Result<usize, SplitError> {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        self.split_locked(shard)
    }

    /// The body of [`Store::split_shard`]; the caller holds the admin lock.
    fn split_locked(&self, shard: usize) -> Result<usize, SplitError> {
        let view = self.current_view();
        if shard >= view.topology.shards() {
            return Err(SplitError::NoSuchShard { shard, shards: view.topology.shards() });
        }
        if !view.topology.is_live(shard) {
            return Err(SplitError::RetiredShard { shard });
        }
        let (topology, child) = view.topology.split(shard);
        let split =
            SplitSpec { child_seed: topology.node(child).seed, version: topology.version() };
        // The linearization point: the bump agreed through the parent's own
        // log, returning exactly the pre-bump keys the child now owns.
        let outgoing = {
            let slot = view.shards[shard].ports.len() - 1; // guest tier
            let mut handle = view.shards[shard].ports[slot].lock().expect("port slot poisoned");
            let (_, mut resps) = handle.reconfigure(ShardCmd::Split(split));
            view.shards[shard].publish_digest(slot, &handle);
            match resps.pop() {
                Some(StoreResp::Entries(entries)) => entries,
                other => unreachable!("a split bump answers with its migration set, got {other:?}"),
            }
        };
        let node = topology.node(child);
        let child_shard = Arc::new(Shard::build(
            crate::ops::ShardSpec { seed: node.seed, created_at: node.created_at },
            self.admission.spec(),
            self.admission.ports(),
            Some((ShardState::with_entries(outgoing.into_iter().collect(), node.created_at), 0)),
        ));
        {
            // Seed the newborn's dashboard so the migrated entries are
            // visible before its first commit.
            let slot = child_shard.ports.len() - 1;
            let handle = child_shard.ports[slot].lock().expect("port slot poisoned");
            child_shard.publish_digest(slot, &handle);
        }
        let mut shards = view.shards.clone();
        shards.push(child_shard);
        self.metrics.record_split(topology.version());
        self.view.store(Arc::new(StoreView { topology, shards }));
        Ok(child)
    }

    /// Merges shard `child` back into its parent **live** — the inverse of
    /// [`Store::split_shard`] — and returns the parent's id. Commits keep
    /// flowing while the merge installs.
    ///
    /// The sequence mirrors the split, with the bump crossing **both**
    /// logs:
    ///
    /// 1. compute the bumped topology (the child tombstoned at the new
    ///    version; structural eligibility per
    ///    [`ShardTopology::check_merge`] — merges unwind splits in
    ///    reverse);
    /// 2. install a [`MergeSpec`] retirement through the **child's** own
    ///    consensus log inside a sealed reconfig cell — the child-side
    ///    linearization point. Everything committed to the child before it
    ///    is drained out as the migration set; batches landing after it
    ///    under the old topology bounce with [`StoreResp::Moved`] and are
    ///    re-planned by their clients. The sealed cell compacts the
    ///    child's log (its last anchor seals an empty state);
    /// 3. install an [`AdoptSpec`] with the drained entries through the
    ///    **parent's** consensus log, also sealed — the parent-side
    ///    linearization point: the parent's anchor now carries the adopted
    ///    subtree, so the merge compacts the parent's log too (the
    ///    dual-log anchor). The parent's epoch is *not* bumped: its own
    ///    keys never move in a merge, so in-flight parent batches stay
    ///    valid;
    /// 4. atomically publish the new `(topology, shards)` view. The
    ///    retired shard keeps its slot (ids stay dense) and keeps
    ///    answering stale batches with `Moved`, but routing, broadcasts,
    ///    and the hot-shard detector skip it from now on.
    ///
    /// Clients whose keys lived on the child observe the same contract as
    /// across a split: an operation is applied exactly once — on the shard
    /// that owns its key at its linearization point — or bounced and
    /// retried, never both. Between the drain and the adoption the moved
    /// keys are reachable by **no** batch: old plans bounce at the child,
    /// and no client can plan against the merged topology until it is
    /// published, which happens only after the adoption installs.
    ///
    /// Both installs ride the guest tier and are lock-free (each failed
    /// placement attempt is a client batch committing); merges serialize
    /// with splits and checkpoints on the admin lock.
    ///
    /// # Errors
    ///
    /// Any [`MergeError`] from [`ShardTopology::check_merge`].
    #[progress(blocking)]
    pub fn merge_shard(&self, child: usize) -> Result<usize, MergeError> {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        self.merge_locked(child)
    }

    /// The body of [`Store::merge_shard`]; the caller holds the admin lock.
    fn merge_locked(&self, child: usize) -> Result<usize, MergeError> {
        let view = self.current_view();
        let (topology, parent) = view.topology.merge(child)?;
        let version = topology.version();
        // Child-side linearization point: retire through the child's own
        // log. Returns exactly the entries committed before the bump.
        let outgoing = {
            let slot = view.shards[child].ports.len() - 1; // guest tier
            let mut handle = view.shards[child].ports[slot].lock().expect("port slot poisoned");
            let (_, mut resps) = handle.reconfigure(ShardCmd::Merge(MergeSpec { version }));
            view.shards[child].publish_digest(slot, &handle);
            match resps.pop() {
                Some(StoreResp::Entries(entries)) => entries,
                other => {
                    unreachable!("a merge retirement answers with its migration set, got {other:?}")
                }
            }
        };
        // Parent-side linearization point: adopt through the parent's log
        // (sealed — the dual-log anchor that also compacts the parent).
        {
            let slot = view.shards[parent].ports.len() - 1; // guest tier
            let mut handle = view.shards[parent].ports[slot].lock().expect("port slot poisoned");
            let (_, resps) = handle
                .reconfigure(ShardCmd::Adopt(AdoptSpec { version, entries: Arc::new(outgoing) }));
            view.shards[parent].publish_digest(slot, &handle);
            debug_assert!(
                matches!(resps.first(), Some(StoreResp::Value(Some(_)))),
                "an adoption answers with its entry count"
            );
        }
        self.metrics.record_merge(version);
        self.metrics.record_adopt();
        self.view.store(Arc::new(StoreView { topology, shards: view.shards.clone() }));
        Ok(parent)
    }

    /// Seals a checkpoint cell on every shard log and returns the sealed
    /// per-shard states — the capture half of the
    /// [`persist`](crate::persist) layer — paired with the topology they
    /// were sealed under.
    ///
    /// Checkpoints ride the guest tier (the last port of each shard), so
    /// sealing never contends with a VIP's exclusive port; placement is
    /// lock-free — each failed attempt means a client batch committed
    /// instead. The sealed prefix caps the shard log's memory: fresh port
    /// handles bootstrap from it and the retired cells become reclaimable.
    /// Serializes with [`Store::split_shard`] so the snapshot's topology
    /// always matches its sealed states.
    #[progress(blocking)]
    pub fn checkpoint(&self) -> crate::persist::StoreSnapshot {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        let view = self.current_view();
        let shards = view
            .shards
            .iter()
            .map(|shard| {
                // Ride the guest tier: guest_ports ≥ 1, so the last port is
                // always a guest port.
                let slot = shard.ports.len() - 1;
                let mut handle = shard.ports[slot].lock().expect("port slot poisoned");
                let log_index = handle.checkpoint();
                crate::persist::ShardSnapshot { log_index, state: handle.local_state().clone() }
            })
            .collect();
        crate::persist::StoreSnapshot { topology: view.topology.clone(), shards }
    }

    /// Per-shard latest-checkpoint log indices (0 where no checkpoint was
    /// ever sealed): where a fresh handle on each shard starts replaying.
    pub fn anchor_indices(&self) -> Vec<u64> {
        self.current_view().shards.iter().map(|shard| shard.log.anchor_index()).collect()
    }

    /// Total log cells replayed by this store's port handles since build —
    /// the replay-work meter summed across all shards and ports. A store
    /// recovered from a checkpoint at index `k` starts near zero here even
    /// though its logs resume at `k`.
    #[progress(blocking)]
    pub fn replay_steps(&self) -> u64 {
        self.current_view()
            .shards
            .iter()
            .flat_map(|shard| &shard.ports)
            .map(|slot| slot.lock().expect("port slot poisoned").replay_steps())
            .sum()
    }

    /// Commits `batch` on `shard` through `port`, dispatching on the port's
    /// tier so each tier's progress class is its own auditable function:
    /// [`Store::commit_vip`] (bounded wait-free) never runs the elasticity
    /// tick; [`Store::commit_guest`] (obstruction-free) carries it.
    fn commit(
        &self,
        shard: &Shard,
        shard_id: usize,
        port: usize,
        batch: Batch,
        durability: DurabilityClass,
    ) -> Vec<StoreResp> {
        if port < self.admission.spec().x() {
            self.commit_vip(shard, shard_id, port, batch, durability)
        } else {
            self.commit_guest(shard, shard_id, port, batch, durability)
        }
    }

    /// A VIP-tier commit: one universal-log append through the client's
    /// exclusively-owned port plus a digest publication, in a bounded
    /// number of the caller's own steps. The cadence clock still advances
    /// ([`Store::note_commit`]), but the policy evaluation — and every
    /// reconfiguration it could install — stays off this path.
    #[progress(bounded_wait_free)]
    fn commit_vip(
        &self,
        shard: &Shard,
        shard_id: usize,
        port: usize,
        batch: Batch,
        durability: DurabilityClass,
    ) -> Vec<StoreResp> {
        let ops = batch.ops.len() as u64;
        let start = std::time::Instant::now();
        let resps = self.commit_on(shard, shard_id, port, batch, durability);
        self.note_commit();
        self.metrics.record_commit(ProgressClass::Vip, ops, elapsed_ns(start), count_moved(&resps));
        resps
    }

    /// A guest-tier commit: the same log append over a **shared** port
    /// (queued behind the port mutex) followed by the elasticity tick —
    /// the obstruction-free tier is also the tier that pays for
    /// reconfiguration.
    #[progress(obstruction_free)]
    fn commit_guest(
        &self,
        shard: &Shard,
        shard_id: usize,
        port: usize,
        batch: Batch,
        durability: DurabilityClass,
    ) -> Vec<StoreResp> {
        let ops = batch.ops.len() as u64;
        let start = std::time::Instant::now();
        let resps = self.commit_on(shard, shard_id, port, batch, durability);
        self.metrics.record_commit(
            ProgressClass::Guest,
            ops,
            elapsed_ns(start),
            count_moved(&resps),
        );
        // The committing handle is released before the tick: a reconfig
        // decided here locks other ports, and a commit must never hold two.
        self.elastic_tick(port);
        resps
    }

    /// The tier-independent commit body: one universal-log append, a digest
    /// publication, a WAL effect frame (if a WAL is attached), and (if
    /// configured) the auto-checkpoint cadence.
    fn commit_on(
        &self,
        shard: &Shard,
        shard_id: usize,
        port: usize,
        batch: Batch,
        durability: DurabilityClass,
    ) -> Vec<StoreResp> {
        let wal_ops = self.wal.as_ref().map(|_| Arc::clone(&batch.ops));
        // APC-LINT: allow(progress): a VIP port's mutex is uncontended by construction (one exclusive owner, and reconfiguration never touches VIP ports), so the VIP path's lock is bounded; guest ports share theirs by design
        let mut handle = shard.ports[port].lock().expect("port slot poisoned");
        let resps = handle.apply(ShardCmd::Batch(batch));
        if let (Some(wal), Some(ops)) = (&self.wal, wal_ops) {
            // Frame the commit's resolved effects while still holding the
            // port lock: the handle's replay cursor is exactly one past
            // this batch's log cell here, giving the frame its exact
            // per-shard linearization stamp. The enqueue is a bounded
            // encode-and-append into the group-commit buffer — fsync never
            // happens under a port lock; a VIP that wants it blocks in
            // `Client::execute_durable`, after every lock is released.
            let effects = crate::wal::resolved_effects(&ops, &resps);
            if !effects.is_empty() {
                // APC-LINT: allow(progress): durability is its own progress class (the module's thesis): logging an effect frame is a bounded buffer append under the WAL mutex, whose critical sections are all bounded memcpys — never an fsync
                wal.enqueue(&WalFrame {
                    epoch: handle.local_state().epoch(),
                    shard: shard_id as u32,
                    cell: handle.replayed_cells(),
                    class: durability,
                    effects,
                });
            }
        }
        shard.publish_digest(port, &handle);
        if let Some(k) = self.checkpoint_every {
            // RELAXED: cadence counter — the checkpoint trigger needs an
            // exact count (atomicity) but no cross-thread ordering.
            let commits = shard.auto_commits.fetch_add(1, Ordering::Relaxed) + 1;
            if commits.is_multiple_of(k) {
                let last = shard.ports.len() - 1;
                if port == last {
                    handle.checkpoint();
                    self.metrics.record_auto_checkpoint();
                } else {
                    // Ride the guest tier without ever holding two port
                    // locks: if the seal port is busy, skip — a commit is
                    // happening there and the next cadence window retries.
                    drop(handle);
                    if let Ok(mut sealer) = shard.ports[last].try_lock() {
                        sealer.checkpoint();
                        self.metrics.record_auto_checkpoint();
                    }
                }
            }
        }
        resps
    }

    /// Advances the elasticity cadence clock without ever evaluating the
    /// policy: the VIP half of the commit-path bookkeeping. VIP commits
    /// count toward the cadence, but the evaluation itself only rides
    /// guest commits ([`Store::elastic_tick`]).
    #[progress(wait_free)]
    fn note_commit(&self) {
        if self.elastic.is_some() {
            // RELAXED: cadence counter, exactly as in `elastic_tick`.
            self.total_commits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One step of the elasticity cadence, ridden by the commit path. Runs
    /// a policy evaluation every `evaluate_every` commits; everything is
    /// try-locked, so a busy engine or a concurrent admin operation makes
    /// this a no-op rather than a stall.
    ///
    /// Reconfigurations ride **guest-tier commits only**: applying a
    /// decision blocks on guest-tier port locks and installs through a
    /// lock-free (not wait-free) reconfig cell, so letting a VIP thread
    /// carry that work would break the wait-free bound its port promises.
    /// A VIP commit crossing the cadence boundary just skips the window —
    /// the next guest boundary picks the evaluation up. (Corollary: a
    /// store serving *only* VIPs never auto-reconfigures.)
    ///
    /// Only [`Store::commit_guest`] calls this; the `port` guard below is
    /// the runtime mirror of that static routing.
    #[progress(blocking)]
    fn elastic_tick(&self, port: usize) {
        let Some(slot) = &self.elastic else { return };
        // RELAXED: cadence counter — the evaluation trigger needs an exact
        // count (atomicity) but no cross-thread ordering.
        let total = self.total_commits.fetch_add(1, Ordering::Relaxed) + 1;
        if !total.is_multiple_of(slot.evaluate_every) {
            return;
        }
        if port < self.admission.spec().x() {
            return; // never on a VIP thread (see above)
        }
        let Ok(mut engine) = slot.engine.try_lock() else { return };
        let Ok(_admin) = self.admin.try_lock() else { return };
        let stats = self.snapshot_stats();
        let topology = self.current_view().topology.clone();
        let decision = engine.evaluate(total, &stats, &topology);
        let applied = match decision {
            ElasticDecision::Split(shard) => self.split_locked(shard).is_ok(),
            ElasticDecision::Merge(shard) => self.merge_locked(shard).is_ok(),
            ElasticDecision::Hold => false,
        };
        self.metrics.record_elastic(decision, applied);
        if applied {
            engine.note_reconfigured(decision, total);
        }
    }

    /// Plans and commits `ops` under `view`, one log append per touched
    /// shard, returning responses in invocation order (stale sub-batches
    /// come back as [`StoreResp::Moved`]).
    fn execute_in(
        &self,
        view: &StoreView,
        port: usize,
        ops: Vec<StoreOp>,
        durability: DurabilityClass,
    ) -> Vec<StoreResp> {
        let plan = view.topology.plan(ops);
        let (subs, reassembly) = plan.into_sub_batches();
        let version = view.topology.version();
        let per_shard: Vec<Vec<StoreResp>> = subs
            .into_iter()
            .enumerate()
            .map(|(s, sub)| {
                if sub.is_empty() {
                    Vec::new()
                } else {
                    self.commit(&view.shards[s], s, port, Batch::new(version, sub), durability)
                }
            })
            .collect();
        reassembly.reassemble(per_shard)
    }

    /// The VIP-pinned twin of [`Store::execute_in`]: plans `ops` and
    /// commits every sub-batch through [`Store::commit_vip`] directly, so
    /// the whole planning-and-commit round is a bounded number of the
    /// caller's own steps — the building block of the bounded request arm
    /// ([`Client::request_vip`]). Only VIP ports may be passed here (the
    /// caller's ticket enforces that).
    #[progress(bounded_wait_free)]
    fn execute_vip_in(
        &self,
        view: &StoreView,
        port: usize,
        ops: Vec<StoreOp>,
        durability: DurabilityClass,
    ) -> Vec<StoreResp> {
        let plan = view.topology.plan(ops);
        let (subs, reassembly) = plan.into_sub_batches();
        let version = view.topology.version();
        let per_shard: Vec<Vec<StoreResp>> = subs
            .into_iter()
            .enumerate()
            .map(|(s, sub)| {
                if sub.is_empty() {
                    Vec::new()
                } else {
                    self.commit_vip(&view.shards[s], s, port, Batch::new(version, sub), durability)
                }
            })
            .collect();
        reassembly.reassemble(per_shard)
    }

    /// The guest-pinned twin of [`Store::execute_in`]: every sub-batch
    /// commits through [`Store::commit_guest`] (queued behind the shared
    /// port, carrying the elasticity tick) — the building block of the
    /// non-blocking guest request arm ([`Client::request_guest`]).
    #[progress(obstruction_free)]
    fn execute_guest_in(
        &self,
        view: &StoreView,
        port: usize,
        ops: Vec<StoreOp>,
        durability: DurabilityClass,
    ) -> Vec<StoreResp> {
        let plan = view.topology.plan(ops);
        let (subs, reassembly) = plan.into_sub_batches();
        let version = view.topology.version();
        let per_shard: Vec<Vec<StoreResp>> = subs
            .into_iter()
            .enumerate()
            .map(|(s, sub)| {
                if sub.is_empty() {
                    Vec::new()
                } else {
                    self.commit_guest(
                        &view.shards[s],
                        s,
                        port,
                        Batch::new(version, sub),
                        durability,
                    )
                }
            })
            .collect();
        reassembly.reassemble(per_shard)
    }

    /// The attached op-granular WAL, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }
}

/// Operations in `resps` bounced by a reconfiguration epoch check.
fn count_moved(resps: &[StoreResp]) -> u64 {
    resps.iter().filter(|r| matches!(r, StoreResp::Moved { .. })).count() as u64
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let view = self.current_view();
        f.debug_struct("Store")
            .field("shards", &view.topology.shards())
            .field("topology_version", &view.topology.version())
            .field("spec", &self.admission.spec())
            .finish()
    }
}

/// A client session: the operation surface of the store.
///
/// Sessions are cheap (`ticket` + store reference) and a single ticket may
/// open many sequential sessions; operations from sessions sharing a guest
/// port serialize on that port's slot.
#[derive(Copy, Clone)]
pub struct Client<'a> {
    store: &'a Store,
    ticket: ClientTicket,
}

impl Client<'_> {
    /// This session's admission ticket.
    #[progress(wait_free)]
    pub fn ticket(&self) -> ClientTicket {
        self.ticket
    }

    /// The session's progress class.
    #[progress(wait_free)]
    pub fn class(&self) -> ProgressClass {
        self.ticket.class()
    }

    /// This session's own tier credential — what the in-process wrappers
    /// put into the [`Request`] envelope.
    #[progress(wait_free)]
    pub fn credential(&self) -> TierCredential {
        TierCredential::for_ticket(&self.ticket)
    }

    /// **The unified entry point**: executes one [`Request`] envelope and
    /// returns its [`Response`] — the same envelope the `apc-net` wire
    /// codec serializes, so a request behaves identically whether it
    /// arrived in process or over a connection.
    ///
    /// Routing, by the envelope's terms:
    ///
    /// * `retry_budget == `[`UNBOUNDED_RETRIES`] — the legacy **waiting
    ///   arm**: `Moved` retries wait (bounded by the store-wide
    ///   `view_wait_timeout`) for the re-planned topology to publish; this
    ///   is what [`Client::execute`] wraps.
    /// * finite `retry_budget` — the **non-blocking bounded arms**
    ///   ([`Client::request_vip`] / [`Client::request_guest`]): no waits
    ///   anywhere; a spent budget or deadline surfaces as the typed
    ///   [`StoreError::RetryBudgetExhausted`] (the envelope's 429) instead
    ///   of blocking. The wire front-end always takes these arms.
    /// * `durability == `[`DurabilityClass::Sync`] — VIP-only; the
    ///   response additionally waits for the covering fsync, and a failed
    ///   flush downgrades applied operations to [`StoreError::Corrupt`]
    ///   ("applied but not durably acknowledged").
    ///
    /// The in-process ticket is authoritative: a request whose credential
    /// claims more than the session's admission is refused with
    /// [`StoreError::GuestTier`] on every operation.
    pub fn request(&mut self, req: Request) -> Response {
        let sync = matches!(req.durability, DurabilityClass::Sync);
        let mut resp = self.request_unsynced(req);
        if sync {
            self.await_durability(&mut resp);
        }
        resp
    }

    /// [`Client::request`] minus the synchronous-durability wait: the
    /// shared dispatcher for the public entry point and the legacy
    /// `execute_durable` wrapper (which performs its own fsync so it can
    /// keep returning the historical [`DurabilityError`]).
    fn request_unsynced(&mut self, req: Request) -> Response {
        // Over-claim gate: in process, the admission ticket is the
        // authority; the credential may only restate (or understate) it.
        if req.credential.class() == ProgressClass::Vip
            && !matches!(self.ticket.class(), ProgressClass::Vip)
        {
            return Response::fail_all(req.ops.len(), StoreError::GuestTier);
        }
        // Synchronous durability is VIP-only and needs a WAL — gate once,
        // for every arm.
        if matches!(req.durability, DurabilityClass::Sync) {
            if !matches!(self.ticket.class(), ProgressClass::Vip) {
                if let Some(wal) = self.store.wal() {
                    wal.metrics().record_sync_denied();
                }
                return Response::fail_all(req.ops.len(), StoreError::GuestTier);
            }
            if self.store.wal().is_none() {
                return Response::fail_all(req.ops.len(), StoreError::Unavailable { version: 0 });
            }
        }
        if req.retry_budget == UNBOUNDED_RETRIES {
            let Request { ops, durability, .. } = req;
            return self.request_waiting(ops, durability);
        }
        match self.ticket.class() {
            ProgressClass::Vip => self.request_vip(req),
            ProgressClass::Guest => self.request_guest(req),
        }
    }

    /// The **bounded VIP arm**: executes the envelope in a bounded number
    /// of the caller's own steps — commits go through the exclusively
    /// owned port (`Store::commit_vip`), and the `Moved` re-plan loop
    /// never waits for a topology to publish: each round re-reads the
    /// current view and spends one unit of the request's `retry_budget`,
    /// so the budget is the a-priori step bound. A spent budget degrades
    /// exactly the still-bounced operations to
    /// [`StoreError::RetryBudgetExhausted`]; a deadline found expired at a
    /// re-plan boundary degrades them to
    /// [`StoreError::DeadlineExceeded`] instead — budget backpressure and
    /// timeout are distinct, typed outcomes.
    ///
    /// This is the arm the `apc-net` reactor pins with `apc-lint`: the
    /// wire front-end's VIP dispatch must stay on it, so no guest flood —
    /// and no reconfiguration — can make a VIP connection wait.
    ///
    /// Synchronous durability note: this arm stamps WAL frames with the
    /// requested class but never performs the (blocking) fsync wait
    /// itself; [`Client::request`] adds it. A direct caller that needs
    /// the sync acknowledgment must use [`Client::request`].
    #[progress(bounded_wait_free)]
    pub fn request_vip(&mut self, req: Request) -> Response {
        if !matches!(self.ticket.class(), ProgressClass::Vip) {
            return Response::fail_all(req.ops.len(), StoreError::GuestTier);
        }
        let Request { ops, durability, deadline_ms, retry_budget, .. } = req;
        let started = std::time::Instant::now();
        let port = self.ticket.port();
        let view = self.store.current_view();
        let first = self.store.execute_vip_in(&view, port, ops.clone(), durability);
        let mut results: Vec<Result<StoreResp, StoreError>> = first.into_iter().map(Ok).collect();
        let mut budget = retry_budget;
        loop {
            let moved: Vec<(usize, u64)> = results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match r {
                    Ok(StoreResp::Moved { epoch }) => Some((i, *epoch)),
                    _ => None,
                })
                .collect();
            if moved.is_empty() {
                return Response { results };
            }
            let expired = deadline_ms.is_some_and(|ms| {
                started.elapsed() >= std::time::Duration::from_millis(u64::from(ms))
            });
            // A passed deadline outranks remaining budget: the caller's
            // *time* ran out, which is actionable differently from the
            // store's backpressure (don't re-send with the same deadline).
            if expired {
                for &(slot, _) in &moved {
                    results[slot] = Err(StoreError::DeadlineExceeded {
                        deadline_ms: deadline_ms.unwrap_or(0),
                    });
                }
                return Response { results };
            }
            if budget == 0 {
                for &(slot, _) in &moved {
                    results[slot] = Err(StoreError::RetryBudgetExhausted { budget: retry_budget });
                }
                return Response { results };
            }
            budget -= 1;
            let Some(need) = moved.iter().map(|&(_, e)| e).max() else {
                return Response { results }; // moved is non-empty here; total anyway
            };
            let view = self.store.current_view();
            if view.topology.version() < need {
                continue; // not yet published: spend one budget unit, re-check
            }
            let retry: Vec<StoreOp> =
                moved.iter().filter_map(|&(i, _)| ops.get(i).cloned()).collect();
            let retried = self.store.execute_vip_in(&view, port, retry, durability);
            for (&(slot, _), resp) in moved.iter().zip(retried) {
                results[slot] = Ok(resp);
            }
        }
    }

    /// The **bounded guest arm**: the obstruction-free twin of
    /// [`Client::request_vip`] — commits queue behind the shared guest
    /// port (`Store::commit_guest`, which also carries the elasticity
    /// tick), but the `Moved` re-plan loop is the same non-waiting,
    /// budget-bounded round: backpressure surfaces as the typed
    /// [`StoreError::RetryBudgetExhausted`] instead of a wait. Guests may
    /// never stamp synchronous durability
    /// ([`StoreError::GuestTier`]).
    #[progress(obstruction_free)]
    pub fn request_guest(&mut self, req: Request) -> Response {
        if !matches!(self.ticket.class(), ProgressClass::Guest) {
            return Response::fail_all(req.ops.len(), StoreError::GuestTier);
        }
        if matches!(req.durability, DurabilityClass::Sync) {
            if let Some(wal) = self.store.wal() {
                wal.metrics().record_sync_denied();
            }
            return Response::fail_all(req.ops.len(), StoreError::GuestTier);
        }
        let Request { ops, durability, deadline_ms, retry_budget, .. } = req;
        let started = std::time::Instant::now();
        let port = self.ticket.port();
        let view = self.store.current_view();
        let first = self.store.execute_guest_in(&view, port, ops.clone(), durability);
        let mut results: Vec<Result<StoreResp, StoreError>> = first.into_iter().map(Ok).collect();
        let mut budget = retry_budget;
        loop {
            let moved: Vec<(usize, u64)> = results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match r {
                    Ok(StoreResp::Moved { epoch }) => Some((i, *epoch)),
                    _ => None,
                })
                .collect();
            if moved.is_empty() {
                return Response { results };
            }
            let expired = deadline_ms.is_some_and(|ms| {
                started.elapsed() >= std::time::Duration::from_millis(u64::from(ms))
            });
            // Same precedence as the VIP arm: time-out before budget-out.
            if expired {
                for &(slot, _) in &moved {
                    results[slot] = Err(StoreError::DeadlineExceeded {
                        deadline_ms: deadline_ms.unwrap_or(0),
                    });
                }
                return Response { results };
            }
            if budget == 0 {
                for &(slot, _) in &moved {
                    results[slot] = Err(StoreError::RetryBudgetExhausted { budget: retry_budget });
                }
                return Response { results };
            }
            budget -= 1;
            let Some(need) = moved.iter().map(|&(_, e)| e).max() else {
                return Response { results }; // moved is non-empty here; total anyway
            };
            let view = self.store.current_view();
            if view.topology.version() < need {
                continue; // not yet published: spend one budget unit, re-check
            }
            let retry: Vec<StoreOp> =
                moved.iter().filter_map(|&(i, _)| ops.get(i).cloned()).collect();
            let retried = self.store.execute_guest_in(&view, port, retry, durability);
            for (&(slot, _), resp) in moved.iter().zip(retried) {
                results[slot] = Ok(resp);
            }
        }
    }

    /// The **coalesced guest arm**: executes many guest envelopes as one
    /// planning-and-commit round — the combined operation list is planned
    /// once and costs ~one log append per touched shard for the *whole
    /// batch*, instead of one per envelope — while preserving every
    /// envelope's own service terms. This is what the `apc-net` reactor
    /// rides to batch the pipelined guest frames of one poll turn.
    ///
    /// Per-envelope semantics are kept intact:
    ///
    /// * each envelope's `retry_budget` is charged once per `Moved`
    ///   re-plan round *it participates in* (envelopes whose operations
    ///   all landed are never charged), and a spent budget degrades only
    ///   that envelope's bounced operations to
    ///   [`StoreError::RetryBudgetExhausted`];
    /// * each envelope's `deadline_ms` is checked at the same re-plan
    ///   boundaries and degrades its bounced operations to
    ///   [`StoreError::DeadlineExceeded`];
    /// * envelopes the guest tier must refuse (synchronous durability, a
    ///   VIP over-claim) are refused individually with
    ///   [`StoreError::GuestTier`], exactly as [`Client::request_guest`]
    ///   would — they do not poison their batch-mates.
    ///
    /// Responses come back in envelope order, each with its results in
    /// invocation order: observationally equivalent to dispatching the
    /// envelopes one at a time, in order, on this session.
    #[progress(obstruction_free)]
    pub fn request_guest_many(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        if !matches!(self.ticket.class(), ProgressClass::Guest) {
            return reqs
                .iter()
                .map(|r| Response::fail_all(r.ops.len(), StoreError::GuestTier))
                .collect();
        }
        let started = std::time::Instant::now();
        let port = self.ticket.port();
        // Build the combined operation list; `owner[i]` names the
        // envelope that contributed combined slot `i`. Envelopes the
        // guest tier refuses get their response up front and contribute
        // no slots.
        let mut out: Vec<Response> =
            reqs.iter().map(|r| Response { results: Vec::with_capacity(r.ops.len()) }).collect();
        let mut combined: Vec<StoreOp> = Vec::new();
        let mut owner: Vec<usize> = Vec::new();
        for (e, req) in reqs.iter().enumerate() {
            if matches!(req.durability, DurabilityClass::Sync) {
                if let Some(wal) = self.store.wal() {
                    wal.metrics().record_sync_denied();
                }
                out[e] = Response::fail_all(req.ops.len(), StoreError::GuestTier);
                continue;
            }
            if req.credential.class() == ProgressClass::Vip {
                out[e] = Response::fail_all(req.ops.len(), StoreError::GuestTier);
                continue;
            }
            for op in &req.ops {
                combined.push(op.clone());
                owner.push(e);
            }
        }
        if combined.is_empty() {
            return out;
        }
        let view = self.store.current_view();
        let first =
            self.store.execute_guest_in(&view, port, combined.clone(), DurabilityClass::Group);
        let mut results: Vec<Result<StoreResp, StoreError>> = first.into_iter().map(Ok).collect();
        let mut budgets: Vec<u32> = reqs.iter().map(|r| r.retry_budget).collect();
        loop {
            let moved: Vec<(usize, u64)> = results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match r {
                    Ok(StoreResp::Moved { epoch }) => Some((i, *epoch)),
                    _ => None,
                })
                .collect();
            if moved.is_empty() {
                break;
            }
            // Settle each bounced slot against its own envelope's terms —
            // the same precedence as the single-envelope arm (time-out
            // before budget-out) — and keep only the slots whose envelope
            // still has both budget and time.
            let mut retry_slots: Vec<(usize, u64)> = Vec::new();
            let mut charged: Vec<bool> = vec![false; reqs.len()];
            for &(slot, epoch) in &moved {
                let e = match owner.get(slot) {
                    Some(&e) => e,
                    None => continue, // unreachable: owner is slot-aligned
                };
                let deadline_ms = reqs.get(e).and_then(|r| r.deadline_ms);
                let expired = deadline_ms.is_some_and(|ms| {
                    started.elapsed() >= std::time::Duration::from_millis(u64::from(ms))
                });
                if expired {
                    results[slot] = Err(StoreError::DeadlineExceeded {
                        deadline_ms: deadline_ms.unwrap_or(0),
                    });
                } else if budgets.get(e).copied().unwrap_or(0) == 0 {
                    results[slot] = Err(StoreError::RetryBudgetExhausted {
                        budget: reqs.get(e).map_or(0, |r| r.retry_budget),
                    });
                } else {
                    retry_slots.push((slot, epoch));
                    charged[e] = true;
                }
            }
            if retry_slots.is_empty() {
                break;
            }
            for (e, hit) in charged.iter().enumerate() {
                if *hit {
                    budgets[e] = budgets[e].saturating_sub(1);
                }
            }
            let Some(need) = retry_slots.iter().map(|&(_, e)| e).max() else {
                break; // retry_slots is non-empty here; total anyway
            };
            let view = self.store.current_view();
            if view.topology.version() < need {
                continue; // not yet published: each waiting envelope spent one unit
            }
            let retry: Vec<StoreOp> =
                retry_slots.iter().filter_map(|&(i, _)| combined.get(i).cloned()).collect();
            let retried = self.store.execute_guest_in(&view, port, retry, DurabilityClass::Group);
            for (&(slot, _), resp) in retry_slots.iter().zip(retried) {
                results[slot] = Ok(resp);
            }
        }
        // Demultiplex: combined slots were appended envelope-by-envelope
        // in order, so sequential pushes restore each envelope's results
        // in invocation order.
        for (slot, r) in results.into_iter().enumerate() {
            if let Some(&e) = owner.get(slot) {
                out[e].results.push(r);
            }
        }
        out
    }

    /// The **waiting arm** (legacy semantics): `Moved` retries wait —
    /// bounded by `view_wait_timeout` — for the re-planned topology, and
    /// a publish that never comes degrades to
    /// [`StoreError::Unavailable`].
    #[progress(blocking)]
    fn request_waiting(&mut self, ops: Vec<StoreOp>, durability: DurabilityClass) -> Response {
        let resps = self.execute_with(ops, durability);
        Response {
            results: resps
                .into_iter()
                .map(|r| match r {
                    StoreResp::Unavailable { version } => Err(StoreError::Unavailable { version }),
                    StoreResp::Moved { epoch } => Err(StoreError::Moved { epoch }),
                    ok => Ok(ok),
                })
                .collect(),
        }
    }

    /// The synchronous-durability tail of [`Client::request`]: waits for
    /// the WAL flush covering the envelope's commits; a failed flush
    /// downgrades every applied operation to [`StoreError::Corrupt`] —
    /// "applied but not durably acknowledged", the same contract as
    /// [`Client::execute_durable`].
    #[progress(blocking)]
    fn await_durability(&mut self, resp: &mut Response) {
        let Some(wal) = self.store.wal() else { return }; // gated upstream; total anyway
        if let Err(err) = wal.sync() {
            let detail = format!("durability flush failed: {err}");
            for slot in resp.results.iter_mut() {
                if slot.is_ok() {
                    *slot = Err(StoreError::Corrupt { detail: detail.clone() });
                }
            }
        }
    }

    /// Executes a batch of operations, one log append per touched shard,
    /// returning responses in invocation order.
    ///
    /// A **thin wrapper** over [`Client::request`]: the envelope carries
    /// this session's own credential, group durability, and an unbounded
    /// retry budget (the waiting arm), then degrades the per-operation
    /// `Result`s back to the legacy [`StoreResp`] vocabulary
    /// ([`Response::into_legacy`]). New code should speak
    /// [`Client::request`] directly.
    ///
    /// If a shard split between planning and commit, the affected
    /// operations come back [`StoreResp::Moved`] from their old shard
    /// (nothing applied); the envelope's retry loop transparently
    /// re-plans exactly those operations against the newly published
    /// topology and patches their responses in place — already-applied
    /// operations are never re-issued, so nothing commits twice and
    /// nothing is dropped.
    ///
    /// The class below is the **floor** over admitted tiers: a guest
    /// session shares its port, so its commits queue behind the port
    /// mutex. A VIP session's commits are bounded wait-free
    /// (`Store::commit_vip`) except across a concurrent reconfiguration,
    /// where the `Moved` retry waits (bounded) for the new topology to
    /// publish; past the bound those operations come back
    /// [`StoreResp::Unavailable`] instead of hanging or aborting.
    #[progress(obstruction_free)]
    pub fn execute(&mut self, ops: Vec<StoreOp>) -> Vec<StoreResp> {
        let credential = self.credential();
        self.request(Request::new(ops).credential(credential)).into_legacy()
    }

    /// Executes a batch under the VIP-only **synchronous durability
    /// class**: on `Ok`, every effect of the batch is fsync'd into the
    /// store's WAL and survives a kill at any later point — the
    /// durability half of the paper's asymmetric guarantees. Guest
    /// sessions are refused ([`DurabilityError::GuestTier`]): their
    /// commits always ride the coalesced group flusher, exactly as their
    /// progress class rides the shared ports.
    ///
    /// A **thin wrapper** over the [`Request`] envelope (durability
    /// [`DurabilityClass::Sync`]), kept for its historical
    /// [`DurabilityError`] signature; it performs the covering fsync
    /// itself so the flush error arrives un-degraded. New code should use
    /// [`Client::request`], where a failed flush surfaces as
    /// [`StoreError::Corrupt`] per operation.
    ///
    /// The commit itself is applied in memory before the fsync wait, so
    /// an `Err` after a partial flush failure means "applied but not
    /// durably acknowledged" — the same contract as a failed
    /// [`Persister::persist`](crate::persist::Persister::persist).
    ///
    /// # Errors
    ///
    /// [`DurabilityError::GuestTier`] for non-VIP sessions,
    /// [`DurabilityError::NoWal`] if the store was built without a WAL,
    /// [`DurabilityError::Wal`] if the covering flush failed.
    #[progress(blocking)]
    pub fn execute_durable(
        &mut self,
        ops: Vec<StoreOp>,
    ) -> Result<Vec<StoreResp>, DurabilityError> {
        let store = self.store;
        if !matches!(self.ticket.class(), ProgressClass::Vip) {
            if let Some(wal) = store.wal() {
                wal.metrics().record_sync_denied();
            }
            return Err(DurabilityError::GuestTier);
        }
        let Some(wal) = store.wal() else {
            return Err(DurabilityError::NoWal);
        };
        let credential = self.credential();
        let req = Request::new(ops).credential(credential).durability(DurabilityClass::Sync);
        let resps = self.request_unsynced(req).into_legacy();
        wal.sync().map_err(DurabilityError::Wal)?;
        Ok(resps)
    }

    /// The execute body, parameterized by the durability class its WAL
    /// frames carry.
    fn execute_with(&mut self, ops: Vec<StoreOp>, durability: DurabilityClass) -> Vec<StoreResp> {
        let view = self.store.current_view();
        let mut resps = self.store.execute_in(&view, self.ticket.port(), ops.clone(), durability);
        loop {
            let moved: Vec<(usize, u64)> = resps
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match r {
                    StoreResp::Moved { epoch } => Some((i, *epoch)),
                    _ => None,
                })
                .collect();
            if moved.is_empty() {
                return resps;
            }
            let Some(need) = moved.iter().map(|&(_, e)| e).max() else {
                return resps; // moved is non-empty here; total anyway
            };
            let Some(view) = self.store.view_at_least(need) else {
                // The bumped topology never published (dead reconfig
                // driver): degrade the still-bounced slots to the typed
                // response instead of crashing the client thread.
                for &(slot, _) in &moved {
                    resps[slot] = StoreResp::Unavailable { version: need };
                }
                return resps;
            };
            let retry: Vec<StoreOp> = moved.iter().map(|&(i, _)| ops[i].clone()).collect();
            let retried = self.store.execute_in(&view, self.ticket.port(), retry, durability);
            for (&(slot, _), resp) in moved.iter().zip(retried) {
                resps[slot] = resp;
            }
        }
    }

    /// Executes one operation. Total by construction: one op in, one
    /// response out; a shape mismatch (a store bug) degrades to
    /// `Value(None)` rather than aborting the client thread.
    fn execute_one(&mut self, op: StoreOp) -> StoreResp {
        match self.execute(vec![op]).pop() {
            Some(resp) => resp,
            None => StoreResp::Value(None),
        }
    }

    /// Reads `key`. `None` means absent — or, degenerately, that the
    /// operation came back [`StoreResp::Unavailable`] (use
    /// [`Client::execute`] to distinguish).
    #[progress(obstruction_free)]
    pub fn get(&mut self, key: &str) -> Option<u64> {
        match self.execute_one(StoreOp::Get(key.into())) {
            StoreResp::Value(v) => v,
            _ => None,
        }
    }

    /// Writes `key`, returning the previous value (`None` if absent or
    /// unavailable — see [`Client::get`]).
    #[progress(obstruction_free)]
    pub fn put(&mut self, key: &str, value: u64) -> Option<u64> {
        match self.execute_one(StoreOp::Put(key.into(), value)) {
            StoreResp::Value(v) => v,
            _ => None,
        }
    }

    /// Removes `key`, returning the removed value (`None` if absent or
    /// unavailable — see [`Client::get`]).
    #[progress(obstruction_free)]
    pub fn remove(&mut self, key: &str) -> Option<u64> {
        match self.execute_one(StoreOp::Remove(key.into())) {
            StoreResp::Value(v) => v,
            _ => None,
        }
    }

    /// Compare-and-set on `key`; returns `(ok, actual)`. An unavailable
    /// topology reads as a failed CAS with `actual: None` — nothing was
    /// applied (use [`Client::execute`] to distinguish).
    #[progress(obstruction_free)]
    pub fn cas(&mut self, key: &str, expect: Option<u64>, new: u64) -> (bool, Option<u64>) {
        match self.execute_one(StoreOp::Cas { key: key.into(), expect, new }) {
            StoreResp::Cas { ok, actual } => (ok, actual),
            _ => (false, None),
        }
    }

    /// Range scan over `[from, to)` merged across all shards, in key
    /// order. An unavailable topology reads as an empty scan (use
    /// [`Client::execute`] to distinguish).
    #[progress(obstruction_free)]
    pub fn scan(&mut self, from: &str, to: &str) -> Vec<(String, u64)> {
        match self.execute_one(StoreOp::Scan { from: from.into(), to: to.into() }) {
            StoreResp::Entries(entries) => entries,
            _ => Vec::new(),
        }
    }
}

impl fmt::Debug for Client<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.ticket.id())
            .field("class", &self.ticket.class())
            .field("port", &self.ticket.port())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store(shards: usize) -> Store {
        StoreBuilder::new()
            .shards(shards)
            .vip_capacity(2)
            .guest_ports(4)
            .guest_group_width(2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_build() {
        let store = StoreBuilder::new().build().unwrap();
        assert_eq!(store.shards(), 4);
        assert_eq!(store.spec().x(), 2);
        assert_eq!(store.spec().y(), 8);
        assert_eq!(store.topology().version(), 0);
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(StoreBuilder::new().shards(0).build().is_err());
    }

    #[test]
    fn vip_and_guest_sessions_see_each_other() {
        let store = small_store(2);
        let vip = store.admit_vip().unwrap();
        let guest = store.admit_guest();
        let mut v = store.client(vip);
        let mut g = store.client(guest);
        assert_eq!(v.put("alpha", 1), None);
        assert_eq!(g.get("alpha"), Some(1));
        assert_eq!(g.put("alpha", 2), Some(1));
        assert_eq!(v.get("alpha"), Some(2));
    }

    #[test]
    fn batches_span_shards_and_keep_invocation_order() {
        let store = small_store(3);
        let mut c = store.client(store.admit_guest());
        let ops: Vec<StoreOp> = (0..12).map(|i| StoreOp::Put(format!("k{i}"), i)).collect();
        let resps = c.execute(ops);
        assert_eq!(resps.len(), 12);
        assert!(resps.iter().all(|r| *r == StoreResp::Value(None)));
        let mut check = store.client(store.admit_guest());
        let all = check.scan("", "z");
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn cas_is_atomic_per_key() {
        let store = small_store(2);
        let mut c = store.client(store.admit_vip().unwrap());
        assert_eq!(c.cas("n", None, 1), (true, None));
        assert_eq!(c.cas("n", None, 2), (false, Some(1)));
        assert_eq!(c.cas("n", Some(1), 2), (true, Some(1)));
        assert_eq!(c.get("n"), Some(2));
    }

    #[test]
    fn guests_sharing_a_port_serialize_but_succeed() {
        // 1 guest port, many guest clients: all multiplex onto the same
        // port and every operation still commits.
        let store = StoreBuilder::new()
            .shards(1)
            .vip_capacity(1)
            .guest_ports(1)
            .guest_group_width(1)
            .build()
            .unwrap();
        let tickets: Vec<_> = (0..4).map(|_| store.admit_guest()).collect();
        assert!(tickets.windows(2).all(|w| w[0].port() == w[1].port()));
        std::thread::scope(|s| {
            for (i, t) in tickets.iter().enumerate() {
                let store = &store;
                s.spawn(move || {
                    let mut c = store.client(*t);
                    for j in 0..10 {
                        c.put(&format!("g{i}/{j}"), j);
                    }
                });
            }
        });
        let mut check = store.client(store.admit_vip().unwrap());
        assert_eq!(check.scan("", "z").len(), 40);
    }

    #[test]
    fn concurrent_counter_is_exact_via_cas() {
        // Contended CAS increments across classes: the final value equals
        // the number of successful CASes (no lost updates).
        let store = small_store(2);
        let vip = store.admit_vip().unwrap();
        let guests: Vec<_> = (0..3).map(|_| store.admit_guest()).collect();
        let success = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in guests.iter().copied().chain([vip]) {
                let store = &store;
                let success = &success;
                s.spawn(move || {
                    let mut c = store.client(t);
                    for _ in 0..25 {
                        loop {
                            let cur = c.get("ctr");
                            let next = cur.unwrap_or(0) + 1;
                            if c.cas("ctr", cur, next).0 {
                                success.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                });
            }
        });
        let mut check = store.client(store.admit_guest());
        assert_eq!(check.get("ctr"), Some(100));
        assert_eq!(success.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn snapshot_stats_track_commits_wait_free() {
        let store = small_store(2);
        let before = store.snapshot_stats();
        assert_eq!(before.len(), 2);
        assert!(before.iter().all(|d| d.commits == 0 && d.entries == 0));
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..8 {
            c.put(&format!("k{i}"), i);
        }
        let after = store.snapshot_stats();
        let total_entries: u64 = after.iter().map(|d| d.entries).sum();
        assert_eq!(total_entries, 8, "digests cover every committed key");
        assert!(after.iter().any(|d| d.commits > 0));
    }

    #[test]
    fn hottest_shard_on_all_zero_digests_is_the_lowest_live_id() {
        // A fresh store has all-zero digests: the documented answer is the
        // lowest live shard id (always 0 — roots never retire), stable
        // across calls, not an accident of max_by tie-breaking order.
        let store = small_store(3);
        assert!(store.snapshot_stats().iter().all(|d| d.commits == 0));
        assert_eq!(store.hottest_shard(), 0);
        assert_eq!(store.hottest_shard(), 0, "idle answer is stable");
    }

    #[test]
    fn hottest_shard_ties_resolve_to_the_lowest_id() {
        // One commit per shard: every digest ties, so the lowest id wins.
        let store = small_store(3);
        let mut c = store.client(store.admit_vip().unwrap());
        for shard in 0..3 {
            let key = (0..).map(|i| format!("t{i}")).find(|k| store.shard_of(k) == shard).unwrap();
            c.put(&key, 1);
        }
        let stats = store.snapshot_stats();
        assert!(stats.iter().all(|d| d.commits == stats[0].commits), "tie precondition");
        assert_eq!(store.hottest_shard(), 0);
    }

    #[test]
    fn hottest_shard_skips_retired_shards_and_tracks_heat() {
        let store = small_store(1);
        let mut c = store.client(store.admit_guest());
        for i in 0..8 {
            c.put(&format!("k{i}"), i);
        }
        let child = store.split_shard(0).unwrap();
        // Heat the child, then retire it: a tombstone's historical digests
        // must never elect it.
        let on_child = (0..).map(|i| format!("c{i}")).find(|k| store.shard_of(k) == child).unwrap();
        for i in 0..16 {
            c.put(&on_child, i);
        }
        assert_eq!(store.hottest_shard(), child);
        store.merge_shard(child).unwrap();
        assert_eq!(store.hottest_shard(), 0, "only live shards are eligible");
    }

    #[test]
    fn scrape_exports_tier_topology_and_shard_series() {
        let store = small_store(2);
        let mut v = store.client(store.admit_vip().unwrap());
        let mut g = store.client(store.admit_guest());
        for i in 0..5 {
            v.put(&format!("v{i}"), i);
        }
        for i in 0..3 {
            g.put(&format!("g{i}"), i);
        }
        let snap = store.scrape();
        let vip = snap.value("store_commits_total", &[("tier", "vip")]).unwrap();
        let guest = snap.value("store_commits_total", &[("tier", "guest")]).unwrap();
        assert_eq!(vip, 5, "one single-op batch per put, one commit each");
        assert_eq!(guest, 3);
        assert_eq!(snap.value("store_moved_ops_total", &[("tier", "vip")]), Some(0));
        let lat = snap.histogram("store_commit_latency_ns", &[("tier", "vip")]).unwrap();
        assert_eq!(lat.count, vip, "every commit is timed");
        let ops = snap.histogram("store_commit_ops", &[("tier", "guest")]).unwrap();
        assert_eq!(ops.sum, 3, "three single-op guest batches");
        assert_eq!(snap.value("store_topology_version", &[]), Some(0));
        assert_eq!(snap.value("store_shards_total", &[]), Some(2));
        assert_eq!(snap.value("store_shards_live", &[]), Some(2));
        let per_shard: u64 = (0..2)
            .map(|s| {
                let shard = format!("{s}");
                snap.value("store_shard_entries", &[("shard", &shard)]).unwrap()
            })
            .sum();
        assert_eq!(per_shard, 8, "per-shard entry gauges cover every key");
        let text = apc_obs::encode_prometheus(&snap);
        assert!(text.contains("store_commits_total{tier=\"vip\"} 5"));
        assert!(text.contains("# TYPE store_commit_latency_ns histogram"));
    }

    #[test]
    fn scrape_tracks_reconfig_events_and_tombstones() {
        let store = small_store(1);
        let mut c = store.client(store.admit_guest());
        for i in 0..8 {
            c.put(&format!("k{i}"), i);
        }
        let child = store.split_shard(0).unwrap();
        let snap = store.scrape();
        assert_eq!(snap.value("store_reconfigs_total", &[("kind", "split")]), Some(1));
        assert_eq!(snap.value("store_reconfig_last_version", &[]), Some(1));
        assert_eq!(snap.value("store_topology_version", &[]), Some(1));
        store.merge_shard(child).unwrap();
        let snap = store.scrape();
        assert_eq!(snap.value("store_reconfigs_total", &[("kind", "merge")]), Some(1));
        assert_eq!(snap.value("store_reconfigs_total", &[("kind", "adopt")]), Some(1));
        assert_eq!(snap.value("store_reconfig_last_version", &[]), Some(2));
        assert_eq!(snap.value("store_shards_total", &[]), Some(2));
        assert_eq!(snap.value("store_shards_live", &[]), Some(1));
        let tomb = snap.value("store_shard_commits", &[("shard", "1"), ("live", "false")]);
        assert!(tomb.is_some(), "retired shards stay exported, labelled live=\"false\"");
    }

    #[test]
    fn removed_keys_disappear_from_scans() {
        let store = small_store(2);
        let mut c = store.client(store.admit_vip().unwrap());
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.remove("a"), Some(1));
        assert_eq!(c.scan("", "z"), vec![("b".to_string(), 2)]);
        assert_eq!(c.remove("a"), None);
    }

    #[test]
    fn debug_renders() {
        let store = small_store(1);
        let c = store.client(store.admit_guest());
        assert!(format!("{store:?}").contains("Store"));
        assert!(format!("{c:?}").contains("Guest"));
    }

    #[test]
    fn split_preserves_every_key_and_rebalances() {
        let store = small_store(2);
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..64 {
            c.put(&format!("key/{i:02}"), i);
        }
        let before = store.client(store.admit_guest()).scan("", "z");
        let hot = store.hottest_shard();
        let child = store.split_shard(hot).unwrap();
        assert_eq!(child, 2, "splits append");
        assert_eq!(store.shards(), 3);
        assert_eq!(store.topology().version(), 1);
        // Nothing lost, nothing duplicated, order preserved.
        assert_eq!(store.client(store.admit_guest()).scan("", "z"), before);
        // The child actually owns keys now, and routing agrees with data.
        let stats = store.snapshot_stats();
        assert!(stats[child].entries > 0, "the split must migrate keys to the child");
        for i in 0..64 {
            let key = format!("key/{i:02}");
            assert_eq!(c.get(&key), Some(i), "{key} survives the split");
        }
        // Point ops keep landing on the right shards post-split.
        assert_eq!(c.put("post-split", 7), None);
        assert_eq!(c.get("post-split"), Some(7));
    }

    #[test]
    fn split_of_missing_shard_is_a_typed_error() {
        let store = small_store(1);
        assert_eq!(store.split_shard(5), Err(SplitError::NoSuchShard { shard: 5, shards: 1 }));
        assert!(store.split_shard(5).unwrap_err().to_string().contains("no shard 5"));
    }

    #[test]
    fn splits_stack_and_children_can_split() {
        let store = small_store(1);
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..96 {
            c.put(&format!("k/{i:03}"), i);
        }
        let c1 = store.split_shard(0).unwrap();
        let c2 = store.split_shard(0).unwrap();
        let c3 = store.split_shard(c1).unwrap();
        assert_eq!((c1, c2, c3), (1, 2, 3));
        assert_eq!(store.topology().version(), 3);
        let all = store.client(store.admit_guest()).scan("", "z");
        assert_eq!(all.len(), 96, "three stacked splits lose nothing");
        let entries: u64 = store.snapshot_stats().iter().map(|d| d.entries).sum();
        assert_eq!(entries, 96);
    }

    #[test]
    fn split_races_concurrent_commits_without_loss_or_duplication() {
        // Writers hammer disjoint keys while the hot shard splits mid-run:
        // every put must survive exactly once, every CAS total stays exact.
        let store = small_store(2);
        let vip = store.admit_vip().unwrap();
        let guests: Vec<_> = (0..3).map(|_| store.admit_guest()).collect();
        let success = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for (w, t) in guests.iter().copied().chain([vip]).enumerate() {
                let store = &store;
                let success = &success;
                s.spawn(move || {
                    let mut c = store.client(t);
                    for i in 0..40 {
                        c.put(&format!("w{w}/{i:02}"), i);
                        loop {
                            let cur = c.get("shared/ctr");
                            if c.cas("shared/ctr", cur, cur.unwrap_or(0) + 1).0 {
                                success.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                });
            }
            let store = &store;
            s.spawn(move || {
                // Split both original shards while the writers run.
                store.split_shard(0).unwrap();
                store.split_shard(1).unwrap();
            });
        });
        assert_eq!(store.shards(), 4);
        let mut check = store.client(store.admit_guest());
        let puts = check.scan("w", "x");
        assert_eq!(puts.len(), 4 * 40, "every put survives the splits exactly once");
        assert_eq!(check.get("shared/ctr"), Some(160));
        assert_eq!(success.load(std::sync::atomic::Ordering::Relaxed), 160);
        // The audit dashboards agree with the data.
        let entries: u64 = store.snapshot_stats().iter().map(|d| d.entries).sum();
        assert_eq!(entries, check.scan("", "z").len() as u64);
    }

    #[test]
    fn merge_preserves_every_key_and_restores_placement() {
        let store = small_store(2);
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..64 {
            c.put(&format!("key/{i:02}"), i);
        }
        let placement_before: Vec<usize> =
            (0..64).map(|i| store.shard_of(&format!("key/{i:02}"))).collect();
        let before = store.client(store.admit_guest()).scan("", "z");
        let child = store.split_shard(0).unwrap();
        let parent = store.merge_shard(child).unwrap();
        assert_eq!(parent, 0);
        assert_eq!(store.shards(), 3, "the tombstone keeps its slot");
        assert_eq!(store.live_shards(), 2);
        assert_eq!(store.topology().version(), 2);
        // Nothing lost, nothing duplicated, order preserved.
        assert_eq!(store.client(store.admit_guest()).scan("", "z"), before);
        // Placement is exactly what it was before the split.
        for (i, &was) in placement_before.iter().enumerate() {
            let key = format!("key/{i:02}");
            assert_eq!(store.shard_of(&key), was, "{key} must route as before the split");
            assert_eq!(c.get(&key), Some(i as u64), "{key} survives the round-trip");
        }
        // The tombstone holds no data; the stats dashboards agree.
        let stats = store.snapshot_stats();
        assert_eq!(stats[child].entries, 0, "the retired child drained everything");
        let entries: u64 = stats.iter().map(|d| d.entries).sum();
        assert_eq!(entries, 64);
        // The store keeps serving and splitting after a merge.
        assert_eq!(c.put("post-merge", 7), None);
        assert_eq!(c.get("post-merge"), Some(7));
        let next = store.split_shard(0).unwrap();
        assert_eq!(next, 3, "tombstoned slots are never reused");
    }

    #[test]
    fn merge_and_split_of_ineligible_shards_are_typed_errors() {
        let store = small_store(2);
        assert_eq!(
            store.merge_shard(9),
            Err(crate::router::MergeError::NoSuchShard { shard: 9, shards: 2 })
        );
        assert_eq!(store.merge_shard(1), Err(crate::router::MergeError::RootShard { shard: 1 }));
        let child = store.split_shard(0).unwrap();
        store.merge_shard(child).unwrap();
        assert_eq!(
            store.merge_shard(child),
            Err(crate::router::MergeError::AlreadyRetired { shard: child })
        );
        assert_eq!(store.split_shard(child), Err(SplitError::RetiredShard { shard: child }));
        assert!(store.split_shard(child).unwrap_err().to_string().contains("retired"));
    }

    #[test]
    fn merge_races_concurrent_commits_without_loss_or_duplication() {
        // Writers hammer disjoint keys while a split and its inverse merge
        // land mid-run: every put survives exactly once, the CAS total
        // stays exact, and the final placement equals the pre-split one.
        let store = small_store(2);
        let vip = store.admit_vip().unwrap();
        let guests: Vec<_> = (0..3).map(|_| store.admit_guest()).collect();
        let success = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for (w, t) in guests.iter().copied().chain([vip]).enumerate() {
                let store = &store;
                let success = &success;
                s.spawn(move || {
                    let mut c = store.client(t);
                    for i in 0..40 {
                        c.put(&format!("w{w}/{i:02}"), i);
                        loop {
                            let cur = c.get("shared/ctr");
                            if c.cas("shared/ctr", cur, cur.unwrap_or(0) + 1).0 {
                                success.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                });
            }
            let store = &store;
            s.spawn(move || {
                let child = store.split_shard(0).unwrap();
                std::thread::yield_now();
                store.merge_shard(child).unwrap();
            });
        });
        assert_eq!(store.shards(), 3);
        assert_eq!(store.live_shards(), 2, "the topology round-tripped");
        let mut check = store.client(store.admit_guest());
        let puts = check.scan("w", "x");
        assert_eq!(puts.len(), 4 * 40, "every put survives the split+merge exactly once");
        assert_eq!(check.get("shared/ctr"), Some(160));
        assert_eq!(success.load(std::sync::atomic::Ordering::Relaxed), 160);
        let entries: u64 = store.snapshot_stats().iter().map(|d| d.entries).sum();
        assert_eq!(entries, check.scan("", "z").len() as u64);
    }

    #[test]
    fn elastic_store_auto_splits_on_melt_and_auto_merges_on_cool() {
        use crate::elastic::ElasticityPolicy;
        // Aggressive policy so the test stays fast: evaluate every 16
        // commits, cool down after 64.
        let store = StoreBuilder::new()
            .shards(4)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .elastic(ElasticityPolicy {
                evaluate_every: 16,
                cooldown: 64,
                // A single-threaded client round-robins its keys, so tiny
                // windows are already burst-free here.
                min_window: 32,
                ..ElasticityPolicy::default()
            })
            .build()
            .unwrap();
        // A guest session: the driver only ever acts from guest-tier
        // commits (VIP threads never carry reconfiguration work).
        let mut c = store.client(store.admit_guest());
        // Melt: hammer keys that all live on one shard under the fresh
        // topology. The driver must split without any manual call.
        let hot_keys = crate::workload::keys_on_shard(&store.topology(), 0, 4);
        let mut rounds = 0;
        while store.elastic_report().unwrap().splits == 0 {
            for key in &hot_keys {
                c.put(key, rounds);
            }
            rounds += 1;
            assert!(rounds < 500, "the melt must trigger an auto-split");
        }
        assert!(store.live_shards() > 4, "the driver grew the topology");
        let grown = store.shards();
        // Cool: move every bit of traffic to shards 1..: the children of
        // shard 0 go cold and the driver must retire them, unwinding to
        // the original live set.
        let cool_keys: Vec<String> =
            (1..4).flat_map(|s| crate::workload::keys_on_shard(&store.topology(), s, 3)).collect();
        let mut rounds = 0;
        while store.live_shards() > 4 {
            for key in &cool_keys {
                c.put(key, rounds);
            }
            rounds += 1;
            assert!(rounds < 2000, "fading load must trigger the auto-merges");
        }
        let report = store.elastic_report().unwrap();
        assert!(report.splits >= 1);
        assert!(report.merges >= 1);
        assert_eq!(store.live_shards(), 4, "the topology converged back");
        assert_eq!(store.shards(), grown, "tombstones keep their slots");
        // The data survived the whole elastic episode.
        for key in &hot_keys {
            assert!(c.get(key).is_some(), "{key} survives auto-split and auto-merge");
        }
    }

    #[test]
    fn elastic_report_is_none_without_the_driver() {
        let store = small_store(1);
        assert!(store.elastic_report().is_none());
    }

    #[test]
    fn auto_checkpoint_cadence_seals_without_explicit_calls() {
        let store = StoreBuilder::new()
            .shards(1)
            .vip_capacity(1)
            .guest_ports(2)
            .guest_group_width(1)
            .checkpoint_every(8)
            .build()
            .unwrap();
        let mut c = store.client(store.admit_vip().unwrap());
        assert_eq!(store.anchor_indices(), vec![0]);
        for i in 0..24 {
            c.put(&format!("k{i}"), i);
        }
        let anchor = store.anchor_indices()[0];
        assert!(anchor >= 8, "at least two cadence windows must have sealed, got {anchor}");
        // A fresh session replays O(delta) thanks to the cadence.
        let mut fresh = store.client(store.admit_guest());
        assert_eq!(fresh.get("k0"), Some(0));
        assert_eq!(c.scan("", "z").len(), 24, "sealing never loses commits");
    }

    #[test]
    fn checkpoint_every_zero_disables_the_cadence() {
        let store = StoreBuilder::new()
            .shards(1)
            .vip_capacity(1)
            .guest_ports(1)
            .guest_group_width(1)
            .checkpoint_every(0)
            .build()
            .unwrap();
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..20 {
            c.put(&format!("k{i}"), i);
        }
        assert_eq!(store.anchor_indices(), vec![0], "no automatic seal when disabled");
    }

    /// A scratch file under the workspace target dir, unique per test.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-unit-tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    #[test]
    fn checkpoint_seals_every_shard_and_publishes_anchors() {
        let store = small_store(3);
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..24 {
            c.put(&format!("k{i}"), i);
        }
        assert_eq!(store.anchor_indices(), vec![0, 0, 0]);
        let snapshot = store.checkpoint();
        assert_eq!(snapshot.shards.len(), 3);
        assert_eq!(snapshot.entries(), 24, "sealed states cover every committed key");
        let anchors = store.anchor_indices();
        for (s, anchor) in anchors.iter().enumerate() {
            assert_eq!(
                *anchor,
                snapshot.shards[s].log_index + 1,
                "anchor points past shard {s}'s checkpoint cell"
            );
        }
        // The store keeps serving after a checkpoint.
        assert_eq!(c.get("k3"), Some(3));
        c.put("post", 99);
        assert_eq!(c.get("post"), Some(99));
    }

    #[test]
    fn persist_and_recover_roundtrip() {
        let path = scratch("roundtrip.snapshot");
        let expected: Vec<(String, u64)> = {
            let store = small_store(2);
            let mut c = store.client(store.admit_vip().unwrap());
            for i in 0..16 {
                c.put(&format!("key/{i:02}"), i * 10);
            }
            c.remove("key/03");
            store.checkpoint().write_to(&path).unwrap();
            // Committed after the flush: must NOT survive the crash.
            c.put("late", 1);
            c.scan("", "z").into_iter().filter(|(k, _)| k != "late").collect()
        }; // store dropped = crash
        let recovered = StoreBuilder::new()
            .vip_capacity(2)
            .guest_ports(4)
            .guest_group_width(2)
            .recover(&path)
            .unwrap();
        assert_eq!(recovered.shards(), 2, "shard count restored from the snapshot");
        let mut c = recovered.client(recovered.admit_vip().unwrap());
        assert_eq!(c.scan("", "z"), expected);
        assert_eq!(c.get("late"), None, "post-flush ops are not durable");
        // The recovered store serves new commits.
        assert_eq!(c.put("fresh", 5), None);
        assert_eq!(c.get("fresh"), Some(5));
    }

    #[test]
    fn recovered_logs_resume_at_the_checkpointed_index() {
        let path = scratch("resume-index.snapshot");
        let snapshot = {
            let store = small_store(2);
            let mut c = store.client(store.admit_guest());
            for i in 0..12 {
                c.put(&format!("k{i}"), i);
            }
            let snapshot = store.checkpoint();
            snapshot.write_to(&path).unwrap();
            snapshot
        };
        let recovered = StoreBuilder::new()
            .vip_capacity(2)
            .guest_ports(4)
            .guest_group_width(2)
            .recover(&path)
            .unwrap();
        assert_eq!(
            recovered.anchor_indices(),
            snapshot.shards.iter().map(|s| s.log_index).collect::<Vec<_>>(),
            "each shard log resumes where its checkpoint sealed it"
        );
        assert_eq!(recovered.replay_steps(), 0, "recovery replays nothing at boot");
        let mut c = recovered.client(recovered.admit_guest());
        let _ = c.get("k0");
        assert!(
            recovered.replay_steps() <= 2,
            "first op after recovery costs O(1) replay, got {}",
            recovered.replay_steps()
        );
    }

    #[test]
    fn recover_missing_file_is_a_typed_error() {
        let err = StoreBuilder::new().recover(scratch("does-not-exist.snapshot")).unwrap_err();
        assert!(matches!(
            err,
            crate::persist::RecoverError::Persist(crate::persist::PersistError::Io { .. })
        ));
    }

    #[test]
    fn group_commit_coalesces_concurrent_flushes() {
        use crate::persist::Persister;
        let path = scratch("group-commit.snapshot");
        let store = small_store(2);
        let mut c = store.client(store.admit_vip().unwrap());
        for i in 0..8 {
            c.put(&format!("k{i}"), i);
        }
        let persister = Persister::new(&path);
        let callers = 8;
        std::thread::scope(|s| {
            for _ in 0..callers {
                let persister = &persister;
                let store = &store;
                s.spawn(move || {
                    persister.persist(store).unwrap();
                });
            }
        });
        let flushes = persister.flushes();
        assert!(
            (1..=callers).contains(&flushes),
            "flush cycles must cover all callers without exceeding them: {flushes}"
        );
        // Sequential calls each get their own cycle (nothing to coalesce
        // with), so the counter is exact here.
        persister.persist(&store).unwrap();
        assert_eq!(persister.flushes(), flushes + 1);
        // Whatever the interleaving, the final file is complete and valid.
        let recovered = StoreBuilder::new()
            .vip_capacity(2)
            .guest_ports(4)
            .guest_group_width(2)
            .recover(&path)
            .unwrap();
        let mut check = recovered.client(recovered.admit_guest());
        assert_eq!(check.scan("", "z").len(), 8);
    }

    #[test]
    fn request_guest_many_matches_sequential_dispatch() {
        let batched_store = small_store(2);
        let sequential_store = small_store(2);
        let envelopes = || {
            vec![
                Request::new(vec![StoreOp::Put("m/a".into(), 1), StoreOp::Get("m/b".into())]),
                Request::new(vec![StoreOp::Put("m/b".into(), 2), StoreOp::Get("m/a".into())]),
                Request::new(vec![
                    StoreOp::Cas { key: "m/a".into(), expect: Some(1), new: 9 },
                    StoreOp::Remove("m/b".into()),
                    StoreOp::Get("m/a".into()),
                ]),
            ]
        };
        let mut batched = batched_store.client(batched_store.admit_guest());
        let got = batched.request_guest_many(envelopes());
        let mut sequential = sequential_store.client(sequential_store.admit_guest());
        let want: Vec<Response> =
            envelopes().into_iter().map(|req| sequential.request_guest(req)).collect();
        assert_eq!(got, want, "one coalesced round ≡ one envelope at a time");
        // Cross-envelope visibility inside the batch: envelope 2's Cas
        // saw envelope 0's Put, its Get sees its own Cas.
        assert_eq!(got[2].results[0], Ok(StoreResp::Cas { ok: true, actual: Some(1) }));
        assert_eq!(got[2].results[2], Ok(StoreResp::Value(Some(9))));
    }

    #[test]
    fn request_guest_many_refuses_sync_envelopes_individually() {
        let store = small_store(1);
        let mut c = store.client(store.admit_guest());
        let got = c.request_guest_many(vec![
            Request::new(vec![StoreOp::Put("s/a".into(), 1)]),
            Request::new(vec![StoreOp::Put("s/b".into(), 2)]).durability(DurabilityClass::Sync),
            Request::new(vec![StoreOp::Get("s/a".into())]),
        ]);
        assert_eq!(got[0].results, vec![Ok(StoreResp::Value(None))]);
        assert_eq!(
            got[1].results,
            vec![Err(StoreError::GuestTier)],
            "a Sync envelope is refused alone, not with its batch-mates"
        );
        assert_eq!(got[2].results, vec![Ok(StoreResp::Value(Some(1)))]);
        assert_eq!(c.get("s/b"), None, "the refused envelope committed nothing");
    }

    #[test]
    fn request_guest_many_requires_a_guest_session() {
        let store = small_store(1);
        let mut vip = store.client(store.admit_vip().unwrap());
        let got = vip.request_guest_many(vec![Request::new(vec![StoreOp::Put("v".into(), 1)])]);
        assert_eq!(got[0].results, vec![Err(StoreError::GuestTier)]);
    }
}
