//! # `apc-store` — a sharded, progress-class-aware object service
//!
//! The service layer that puts the paper's machinery to work for many
//! concurrent clients: an in-memory, sharded key→value store whose clients
//! are admitted into **asymmetric progress classes** — a bounded wait-free
//! VIP tier and an unbounded obstruction-free guest tier — over
//! `apc-universal`'s `(y,x)`-live universal construction.
//!
//! Three layers:
//!
//! * [`admission`] — registers clients into the per-shard
//!   [`Liveness`](apc_core::liveness::Liveness) spec: VIPs own wait-free
//!   ports exclusively (capacity `x`, admission fails beyond it — hard
//!   guarantees are bounded, per Theorem 3), guests are unbounded and
//!   multiplex onto guest ports placed into
//!   [`GroupLayout`](apc_core::group::GroupLayout)-computed arbiter-cascade
//!   groups (§6.2);
//! * [`router`] — rendezvous-hashes keys over a **versioned shard
//!   topology** (HRW at the roots, pairwise HRW down the split tree,
//!   tombstones skipped) and plans client batches into at most one log
//!   append per live shard, merging broadcast scans; the topology is
//!   **elastic in both directions**:
//!   [`Store::split_shard`](store::Store::split_shard) grows it live
//!   (the bump linearized through the hot shard's own consensus log)
//!   and [`Store::merge_shard`](store::Store::merge_shard) retires a
//!   cold child back into its parent (a drain through the child's log
//!   plus an adoption through the parent's — both sealed, so a merge
//!   compacts both logs). [`StoreBuilder::elastic`] adds the automatic
//!   policy driver ([`elastic`]): split on sustained total-share skew,
//!   merge faded children back, hysteresis + cool-down against thrash;
//! * [`ops`] + [`store`] — read/write/CAS/scan operations, same-shard
//!   batching into single universal-construction appends, and wait-free
//!   snapshot statistics through
//!   [`SwmrSnapshot`](apc_registers::snapshot::SwmrSnapshot) for the VIP
//!   dashboard path.
//!
//! The [`persist`] layer makes the store crash-recoverable: a flush seals a
//! **checkpoint cell** on every shard log (agreed through the same
//! consensus path as client batches), writes the sealed states as a
//! versioned, checksummed snapshot file with group-commit coalescing of
//! concurrent flush requests, and
//! [`StoreBuilder::recover`] rebuilds the store with every shard log resuming
//! at its checkpointed index — boot-time replay is O(delta), never
//! O(history).
//!
//! The [`model`] module re-expresses the shard commit path as an
//! `apc-model` program so small instances can be *exhaustively* checked:
//! commit safety on every schedule (including a checkpoint install racing
//! concurrent VIP/guest commits), termination of every fair VIP schedule,
//! and a positive livelock witness for guest-only schedules — the
//! asymmetric liveness claim, machine-checked.
//!
//! ## Example
//!
//! ```
//! use apc_store::{StoreBuilder, StoreOp, StoreResp};
//!
//! let store = StoreBuilder::new().shards(2).vip_capacity(1).build().unwrap();
//!
//! // The wait-free tier is bounded…
//! let vip = store.admit_vip().unwrap();
//! assert!(store.admit_vip().is_err());
//! // …the obstruction-free tier is not.
//! let guest = store.admit_guest();
//!
//! let mut v = store.client(vip);
//! let mut g = store.client(guest);
//! v.put("user/1", 10);
//! g.put("user/2", 20);
//!
//! // Same-shard ops batch into one consensus-backed append per shard.
//! let resps = v.execute(vec![
//!     StoreOp::Get("user/1".into()),
//!     StoreOp::Cas { key: "user/2".into(), expect: Some(20), new: 21 },
//! ]);
//! assert_eq!(resps[0], StoreResp::Value(Some(10)));
//! assert_eq!(resps[1], StoreResp::Cas { ok: true, actual: Some(20) });
//!
//! // Wait-free store-wide stats (never touches the consensus log).
//! let digests = store.snapshot_stats();
//! assert_eq!(digests.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod elastic;
pub mod metrics;
pub mod model;
pub mod ops;
pub mod persist;
pub mod router;
pub mod store;
pub mod wal;
pub mod workload;

pub use admission::{Admission, AdmissionConfig, AdmissionError, ClientTicket, ProgressClass};
pub use apc_obs::{
    encode_prometheus, Counter, FixedHistogram, Gauge, HistogramSnapshot, MetricsSnapshot, Sample,
    SampleValue,
};
pub use api::{Request, Response, StoreError, TierCredential, UNBOUNDED_RETRIES};
pub use elastic::{ElasticDecision, ElasticEngine, ElasticReport, ElasticityPolicy};
pub use ops::{
    apply_op, AdoptSpec, Batch, Key, MergeSpec, ShardCmd, ShardSpec, ShardState, SplitSpec,
    StoreOp, StoreResp,
};
pub use persist::{PersistError, Persister, RecoverError, ShardSnapshot, StoreSnapshot};
pub use router::{
    BatchPlan, BatchReassembly, MergeError, ShardTopology, TopoNode, TopoRecord, TopologyError,
};
pub use store::{Client, ShardDigest, ShardLog, SplitError, Store, StoreBuilder};
pub use wal::{DurabilityClass, DurabilityError, Wal, WalConfig, WalFrame, WalRecovery};
pub use workload::Scenario;
