//! The operation layer: store operations, responses, and same-shard
//! batching into a single universal-construction append.
//!
//! A [`Batch`] is the unit the per-shard log agrees on: one log cell commits
//! an entire batch of same-shard operations atomically, so a client issuing
//! `k` operations against one shard pays for **one** consensus-backed append
//! instead of `k`.

use std::collections::BTreeMap;

use apc_universal::seq::SequentialSpec;

/// A store key. Keys are routed to shards by [`crate::router::ShardRouter`].
pub type Key = String;

/// One client-visible store operation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StoreOp {
    /// Read a key.
    Get(Key),
    /// Insert or replace a key; responds with the previous value.
    Put(Key, u64),
    /// Remove a key; responds with the removed value.
    Remove(Key),
    /// Compare-and-set: install `new` iff the current value equals `expect`
    /// (`None` = absent). Responds [`StoreResp::Cas`] with the outcome and
    /// the value actually observed.
    Cas {
        /// The key to update.
        key: Key,
        /// The expected current value (`None` for "absent").
        expect: Option<u64>,
        /// The value to install on a match.
        new: u64,
    },
    /// Range scan over `[from, to)`, merged across shards by the router.
    Scan {
        /// Inclusive lower bound.
        from: Key,
        /// Exclusive upper bound.
        to: Key,
    },
}

impl StoreOp {
    /// The key this operation routes by, or `None` for multi-shard ops
    /// (scans are broadcast to every shard).
    pub fn routing_key(&self) -> Option<&str> {
        match self {
            StoreOp::Get(k) | StoreOp::Put(k, _) | StoreOp::Remove(k) => Some(k),
            StoreOp::Cas { key, .. } => Some(key),
            StoreOp::Scan { .. } => None,
        }
    }
}

/// The response to one [`StoreOp`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreResp {
    /// Response of `Get` / `Put` / `Remove`: the (previous) value.
    Value(Option<u64>),
    /// Response of `Cas`.
    Cas {
        /// Whether the CAS installed its new value.
        ok: bool,
        /// The value observed at the linearization point.
        actual: Option<u64>,
    },
    /// Response of `Scan`: the matching entries in key order.
    Entries(Vec<(Key, u64)>),
}

impl StoreResp {
    /// Convenience accessor for `Value` responses.
    ///
    /// # Panics
    ///
    /// Panics if this is not a [`StoreResp::Value`].
    pub fn expect_value(&self) -> Option<u64> {
        match self {
            StoreResp::Value(v) => *v,
            other => panic!("expected a value response, got {other:?}"),
        }
    }
}

/// The per-shard state: an ordered map, scannable by range.
pub type ShardState = BTreeMap<Key, u64>;

/// Applies one operation to a shard state — the single place the
/// operational semantics live, shared by the real store, the sequential
/// oracle in tests, and the model commit path.
pub fn apply_op(state: &mut ShardState, op: &StoreOp) -> StoreResp {
    match op {
        StoreOp::Get(k) => StoreResp::Value(state.get(k).copied()),
        StoreOp::Put(k, v) => StoreResp::Value(state.insert(k.clone(), *v)),
        StoreOp::Remove(k) => StoreResp::Value(state.remove(k)),
        StoreOp::Cas { key, expect, new } => {
            let actual = state.get(key).copied();
            let ok = actual == *expect;
            if ok {
                state.insert(key.clone(), *new);
            }
            StoreResp::Cas { ok, actual }
        }
        StoreOp::Scan { from, to } => {
            if from >= to {
                return StoreResp::Entries(Vec::new());
            }
            StoreResp::Entries(
                state
                    .range(from.clone()..to.clone())
                    .map(|(k, v)| (k.clone(), *v))
                    .collect(),
            )
        }
    }
}

/// A batch of same-shard operations committed by **one** log append.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Batch(pub Vec<StoreOp>);

/// The sequential specification of one shard: an ordered map whose log
/// entries are whole [`Batch`]es.
#[derive(Copy, Clone, Debug, Default)]
pub struct ShardSpec;

impl SequentialSpec for ShardSpec {
    type State = ShardState;
    type Op = Batch;
    type Resp = Vec<StoreResp>;

    fn init(&self) -> ShardState {
        BTreeMap::new()
    }

    fn apply(&self, state: &mut ShardState, batch: &Batch) -> Vec<StoreResp> {
        batch.0.iter().map(|op| apply_op(state, op)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let mut s = ShardState::new();
        assert_eq!(apply_op(&mut s, &StoreOp::Put("a".into(), 1)), StoreResp::Value(None));
        assert_eq!(apply_op(&mut s, &StoreOp::Get("a".into())), StoreResp::Value(Some(1)));
        assert_eq!(apply_op(&mut s, &StoreOp::Remove("a".into())), StoreResp::Value(Some(1)));
        assert_eq!(apply_op(&mut s, &StoreOp::Get("a".into())), StoreResp::Value(None));
    }

    #[test]
    fn cas_matches_and_mismatches() {
        let mut s = ShardState::new();
        let op = StoreOp::Cas { key: "k".into(), expect: None, new: 5 };
        assert_eq!(apply_op(&mut s, &op), StoreResp::Cas { ok: true, actual: None });
        let op = StoreOp::Cas { key: "k".into(), expect: Some(4), new: 6 };
        assert_eq!(apply_op(&mut s, &op), StoreResp::Cas { ok: false, actual: Some(5) });
        assert_eq!(s["k"], 5, "failed CAS must not write");
        let op = StoreOp::Cas { key: "k".into(), expect: Some(5), new: 6 };
        assert_eq!(apply_op(&mut s, &op), StoreResp::Cas { ok: true, actual: Some(5) });
        assert_eq!(s["k"], 6);
    }

    #[test]
    fn scan_is_half_open_and_ordered() {
        let mut s = ShardState::new();
        for (k, v) in [("a", 1u64), ("b", 2), ("c", 3), ("d", 4)] {
            s.insert(k.into(), v);
        }
        let resp = apply_op(&mut s, &StoreOp::Scan { from: "b".into(), to: "d".into() });
        assert_eq!(resp, StoreResp::Entries(vec![("b".into(), 2), ("c".into(), 3)]));
        // Empty and inverted ranges yield nothing (no panic).
        let resp = apply_op(&mut s, &StoreOp::Scan { from: "d".into(), to: "b".into() });
        assert_eq!(resp, StoreResp::Entries(vec![]));
    }

    #[test]
    fn batch_applies_in_order() {
        let spec = ShardSpec;
        let mut s = spec.init();
        let batch = Batch(vec![
            StoreOp::Put("x".into(), 1),
            StoreOp::Cas { key: "x".into(), expect: Some(1), new: 2 },
            StoreOp::Get("x".into()),
        ]);
        let resps = spec.apply(&mut s, &batch);
        assert_eq!(
            resps,
            vec![
                StoreResp::Value(None),
                StoreResp::Cas { ok: true, actual: Some(1) },
                StoreResp::Value(Some(2)),
            ]
        );
    }

    #[test]
    fn routing_keys() {
        assert_eq!(StoreOp::Get("k".into()).routing_key(), Some("k"));
        assert_eq!(StoreOp::Scan { from: "a".into(), to: "b".into() }.routing_key(), None);
    }
}
