//! The operation layer: store operations, responses, and same-shard
//! batching into a single universal-construction append.
//!
//! The unit the per-shard log agrees on is a [`ShardCmd`]: either a client
//! [`Batch`] (one log cell commits an entire batch of same-shard operations
//! atomically, so a client issuing `k` operations against one shard pays
//! for **one** consensus-backed append instead of `k`) or a
//! reconfiguration record installed through the same consensus path so it
//! linearizes against concurrent batches: a [`SplitSpec`] (the
//! topology-bump half of a live shard split), a [`MergeSpec`] (the
//! child-side retirement of a live merge, draining the child's state), or
//! an [`AdoptSpec`] (the parent-side adoption of those drained entries).
//!
//! Every batch is stamped with the topology version it was planned under
//! ([`Batch::planned_at`]). A shard state remembers the version of its own
//! last split ([`ShardState::epoch`]); a batch planned before that split
//! may route keys that have since moved away, so it is rejected whole with
//! [`StoreResp::Moved`] **at the linearization point** — deterministically,
//! by every replica — and the client re-plans it against the published
//! topology. This is what makes a split safe: an operation either commits
//! before the bump (and its keys migrate with the sealed state) or lands
//! after it (and is bounced to the shard that now owns its keys); it is
//! never applied twice and never dropped.

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};

use apc_universal::seq::SequentialSpec;

use crate::router::rendezvous_score;

/// A store key. Keys are routed to shards by
/// [`ShardTopology`](crate::router::ShardTopology).
pub type Key = String;

/// One client-visible store operation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StoreOp {
    /// Read a key.
    Get(Key),
    /// Insert or replace a key; responds with the previous value.
    Put(Key, u64),
    /// Remove a key; responds with the removed value.
    Remove(Key),
    /// Compare-and-set: install `new` iff the current value equals `expect`
    /// (`None` = absent). Responds [`StoreResp::Cas`] with the outcome and
    /// the value actually observed.
    Cas {
        /// The key to update.
        key: Key,
        /// The expected current value (`None` for "absent").
        expect: Option<u64>,
        /// The value to install on a match.
        new: u64,
    },
    /// Range scan over `[from, to)`, merged across shards by the router.
    Scan {
        /// Inclusive lower bound.
        from: Key,
        /// Exclusive upper bound.
        to: Key,
    },
}

impl StoreOp {
    /// The key this operation routes by, or `None` for multi-shard ops
    /// (scans are broadcast to every shard).
    pub fn routing_key(&self) -> Option<&str> {
        match self {
            StoreOp::Get(k) | StoreOp::Put(k, _) | StoreOp::Remove(k) => Some(k),
            StoreOp::Cas { key, .. } => Some(key),
            StoreOp::Scan { .. } => None,
        }
    }
}

/// The response to one [`StoreOp`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreResp {
    /// Response of `Get` / `Put` / `Remove`: the (previous) value.
    Value(Option<u64>),
    /// Response of `Cas`.
    Cas {
        /// Whether the CAS installed its new value.
        ok: bool,
        /// The value observed at the linearization point.
        actual: Option<u64>,
    },
    /// Response of `Scan`: the matching entries in key order.
    Entries(Vec<(Key, u64)>),
    /// The shard split after this op's batch was planned: nothing was
    /// applied; re-plan against a topology of at least `epoch` and retry.
    /// Client sessions resolve this internally
    /// ([`Client::execute`](crate::store::Client::execute)); callers only
    /// see it when driving sub-batches by hand.
    Moved {
        /// The rejecting shard's split epoch (the minimum topology version
        /// that routes correctly for it).
        epoch: u64,
    },
    /// The operation could not be placed: a reconfiguration bounced it
    /// ([`StoreResp::Moved`]) and the required topology was never
    /// published within the store's view-wait bound — the reconfiguration
    /// driver likely died between installing its bump and publishing.
    /// Nothing was applied for this operation; retrying is safe once the
    /// topology recovers. This is the typed, non-panicking surface of what
    /// used to be a client-thread abort.
    Unavailable {
        /// The topology version the retry loop was waiting for.
        version: u64,
    },
}

impl StoreResp {
    /// Convenience accessor for `Value` responses.
    ///
    /// # Panics
    ///
    /// Panics if this is not a [`StoreResp::Value`].
    pub fn expect_value(&self) -> Option<u64> {
        match self {
            StoreResp::Value(v) => *v,
            other => panic!("expected a value response, got {other:?}"),
        }
    }
}

/// The per-shard state: an ordered map, scannable by range, plus the
/// topology **epoch** of the shard's last split.
///
/// Dereferences to the underlying `BTreeMap<Key, u64>` — the epoch is
/// metadata the operational semantics never read, so map-level access stays
/// as direct as it was when this type *was* the map.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ShardState {
    entries: BTreeMap<Key, u64>,
    /// The topology version of this shard's most recent split (or the
    /// version whose split created it). Batches planned earlier are stale.
    epoch: u64,
}

impl ShardState {
    /// An empty state at epoch 0.
    pub fn new() -> Self {
        ShardState::default()
    }

    /// A state preloaded with `entries` at the given split `epoch` — how a
    /// freshly split-off shard is born, and how recovery rebuilds one.
    pub fn with_entries(entries: BTreeMap<Key, u64>, epoch: u64) -> Self {
        ShardState { entries, epoch }
    }

    /// The topology version of this shard's most recent split.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Deref for ShardState {
    type Target = BTreeMap<Key, u64>;

    fn deref(&self) -> &BTreeMap<Key, u64> {
        &self.entries
    }
}

impl DerefMut for ShardState {
    fn deref_mut(&mut self) -> &mut BTreeMap<Key, u64> {
        &mut self.entries
    }
}

/// Applies one operation to a shard state — the single place the
/// operational semantics live, shared by the real store, the sequential
/// oracle in tests, and the model commit path.
pub fn apply_op(state: &mut ShardState, op: &StoreOp) -> StoreResp {
    match op {
        StoreOp::Get(k) => StoreResp::Value(state.get(k).copied()),
        StoreOp::Put(k, v) => StoreResp::Value(state.insert(k.clone(), *v)),
        StoreOp::Remove(k) => StoreResp::Value(state.remove(k)),
        StoreOp::Cas { key, expect, new } => {
            let actual = state.get(key).copied();
            let ok = actual == *expect;
            if ok {
                state.insert(key.clone(), *new);
            }
            StoreResp::Cas { ok, actual }
        }
        StoreOp::Scan { from, to } => {
            if from >= to {
                return StoreResp::Entries(Vec::new());
            }
            StoreResp::Entries(
                state.range(from.clone()..to.clone()).map(|(k, v)| (k.clone(), *v)).collect(),
            )
        }
    }
}

/// A batch of same-shard operations committed by **one** log append,
/// stamped with the topology version it was planned under.
///
/// The ops are `Arc`-shared: a batch is cloned many times on its way
/// through the log (the announce slot, every consensus proposal, the
/// agreed cell), and sharing makes each of those clones O(1) instead of a
/// deep copy of every key string.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Batch {
    /// The topology version the router used to place this batch's keys.
    pub planned_at: u64,
    /// The operations, in invocation order.
    pub ops: std::sync::Arc<Vec<StoreOp>>,
}

impl Batch {
    /// A batch of `ops` planned under topology version `planned_at`.
    pub fn new(planned_at: u64, ops: Vec<StoreOp>) -> Self {
        Batch { planned_at, ops: std::sync::Arc::new(ops) }
    }
}

/// The topology-bump half of a live shard split, installed through the
/// shard's own consensus log (inside a sealed
/// [`ReconfigRecord`](apc_universal::ReconfigRecord) cell, see
/// [`Store::split_shard`](crate::store::Store::split_shard)).
///
/// Applying it partitions the shard's entries by pairwise rendezvous
/// between the shard's own seed and `child_seed`: the keys the child wins
/// are drained out of this shard and returned
/// ([`StoreResp::Entries`]) so the split driver can install them into the
/// new shard before publishing the bumped topology. It also advances the
/// shard's [`ShardState::epoch`] to `version`, after which older batches
/// bounce with [`StoreResp::Moved`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SplitSpec {
    /// The rendezvous seed of the new child shard.
    pub child_seed: u64,
    /// The bumped topology version.
    pub version: u64,
}

/// The child-side half of a live shard **merge**: the retirement record,
/// installed through the retiring child's own consensus log (sealed, like
/// a split bump — see [`Store::merge_shard`](crate::store::Store::merge_shard)).
///
/// Applying it drains **every** entry out of the child (returned as
/// [`StoreResp::Entries`], the migration set the merge driver hands to the
/// parent's [`AdoptSpec`]) and advances the child's
/// [`ShardState::epoch`] to `version`, after which any batch planned under
/// an older topology bounces with [`StoreResp::Moved`] — the retired shard
/// keeps answering, it just answers "moved".
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MergeSpec {
    /// The bumped topology version (the child's retirement version).
    pub version: u64,
}

/// The parent-side half of a live shard merge: the adoption record,
/// installed through the **parent's** consensus log right after the
/// child's [`MergeSpec`] drained its state.
///
/// Applying it inserts the child's drained entries into the parent. The
/// parent's epoch is deliberately **not** advanced: keys that routed to
/// the parent before the merge still route to it after (a merge only adds
/// the child's keys back), so in-flight parent batches stay valid — the
/// bounce-and-re-plan cost is paid only by batches aimed at the retired
/// child, mirroring the split path's minimal disruption.
///
/// The entries are `Arc`-shared for the same reason [`Batch::ops`] is: the
/// record is cloned on every consensus propose/peek on its way through the
/// log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AdoptSpec {
    /// The topology version of the merge this adoption completes.
    pub version: u64,
    /// The child's drained entries, in key order.
    pub entries: std::sync::Arc<Vec<(Key, u64)>>,
}

/// One agreed log cell's command: a client batch or a reconfiguration
/// (split bump, merge retirement, or merge adoption — admin paths only).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ShardCmd {
    /// A client batch (the common case).
    Batch(Batch),
    /// A live-split topology bump (admin path only).
    Split(SplitSpec),
    /// A live-merge retirement: drain this (child) shard and start
    /// bouncing stale batches (admin path only).
    Merge(MergeSpec),
    /// A live-merge adoption: fold a retired child's drained entries into
    /// this (parent) shard (admin path only).
    Adopt(AdoptSpec),
}

/// The sequential specification of one shard: an ordered map whose log
/// entries are whole [`ShardCmd`]s. Each shard's spec carries its own
/// rendezvous `seed` (the split partition rule needs it) and the topology
/// version the shard was created at (its initial epoch).
#[derive(Copy, Clone, Debug, Default)]
pub struct ShardSpec {
    /// This shard's rendezvous seed.
    pub seed: u64,
    /// The topology version whose split created this shard (0 for roots).
    pub created_at: u64,
}

impl SequentialSpec for ShardSpec {
    type State = ShardState;
    type Op = ShardCmd;
    type Resp = Vec<StoreResp>;

    fn init(&self) -> ShardState {
        ShardState { entries: BTreeMap::new(), epoch: self.created_at }
    }

    fn apply(&self, state: &mut ShardState, cmd: &ShardCmd) -> Vec<StoreResp> {
        match cmd {
            ShardCmd::Batch(batch) => {
                if batch.planned_at < state.epoch {
                    // Planned before this shard's latest split: some of its
                    // keys may have moved. Reject deterministically; the
                    // client re-plans under the published topology.
                    let epoch = state.epoch;
                    return batch.ops.iter().map(|_| StoreResp::Moved { epoch }).collect();
                }
                batch.ops.iter().map(|op| apply_op(state, op)).collect()
            }
            ShardCmd::Split(split) => {
                let own = self.seed;
                let outgoing: Vec<(Key, u64)> = state
                    .entries
                    .iter()
                    .filter(|(k, _)| {
                        rendezvous_score(split.child_seed, k) > rendezvous_score(own, k)
                    })
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                for (k, _) in &outgoing {
                    state.entries.remove(k);
                }
                state.epoch = split.version;
                vec![StoreResp::Entries(outgoing)]
            }
            ShardCmd::Merge(merge) => {
                // Retirement drains everything: the whole state is the
                // migration set, and the epoch bump makes every batch
                // planned before the merge bounce deterministically.
                let outgoing: Vec<(Key, u64)> =
                    state.entries.iter().map(|(k, v)| (k.clone(), *v)).collect();
                state.entries.clear();
                state.epoch = merge.version;
                vec![StoreResp::Entries(outgoing)]
            }
            ShardCmd::Adopt(adopt) => {
                // Adoption folds the child's keys back in. The child owned
                // them exclusively, so this never overwrites a live entry;
                // the parent's epoch stays put (see [`AdoptSpec`]).
                let adopted = adopt.entries.len() as u64;
                for (k, v) in adopt.entries.iter() {
                    state.entries.insert(k.clone(), *v);
                }
                vec![StoreResp::Value(Some(adopted))]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let mut s = ShardState::new();
        assert_eq!(apply_op(&mut s, &StoreOp::Put("a".into(), 1)), StoreResp::Value(None));
        assert_eq!(apply_op(&mut s, &StoreOp::Get("a".into())), StoreResp::Value(Some(1)));
        assert_eq!(apply_op(&mut s, &StoreOp::Remove("a".into())), StoreResp::Value(Some(1)));
        assert_eq!(apply_op(&mut s, &StoreOp::Get("a".into())), StoreResp::Value(None));
    }

    #[test]
    fn cas_matches_and_mismatches() {
        let mut s = ShardState::new();
        let op = StoreOp::Cas { key: "k".into(), expect: None, new: 5 };
        assert_eq!(apply_op(&mut s, &op), StoreResp::Cas { ok: true, actual: None });
        let op = StoreOp::Cas { key: "k".into(), expect: Some(4), new: 6 };
        assert_eq!(apply_op(&mut s, &op), StoreResp::Cas { ok: false, actual: Some(5) });
        assert_eq!(s["k"], 5, "failed CAS must not write");
        let op = StoreOp::Cas { key: "k".into(), expect: Some(5), new: 6 };
        assert_eq!(apply_op(&mut s, &op), StoreResp::Cas { ok: true, actual: Some(5) });
        assert_eq!(s["k"], 6);
    }

    #[test]
    fn scan_is_half_open_and_ordered() {
        let mut s = ShardState::new();
        for (k, v) in [("a", 1u64), ("b", 2), ("c", 3), ("d", 4)] {
            s.insert(k.into(), v);
        }
        let resp = apply_op(&mut s, &StoreOp::Scan { from: "b".into(), to: "d".into() });
        assert_eq!(resp, StoreResp::Entries(vec![("b".into(), 2), ("c".into(), 3)]));
        // Empty and inverted ranges yield nothing (no panic).
        let resp = apply_op(&mut s, &StoreOp::Scan { from: "d".into(), to: "b".into() });
        assert_eq!(resp, StoreResp::Entries(vec![]));
    }

    #[test]
    fn batch_applies_in_order() {
        let spec = ShardSpec::default();
        let mut s = spec.init();
        let batch = ShardCmd::Batch(Batch::new(
            0,
            vec![
                StoreOp::Put("x".into(), 1),
                StoreOp::Cas { key: "x".into(), expect: Some(1), new: 2 },
                StoreOp::Get("x".into()),
            ],
        ));
        let resps = spec.apply(&mut s, &batch);
        assert_eq!(
            resps,
            vec![
                StoreResp::Value(None),
                StoreResp::Cas { ok: true, actual: Some(1) },
                StoreResp::Value(Some(2)),
            ]
        );
    }

    #[test]
    fn stale_batches_bounce_whole() {
        let spec = ShardSpec { seed: 7, created_at: 0 };
        let mut s = spec.init();
        spec.apply(&mut s, &ShardCmd::Batch(Batch::new(0, vec![StoreOp::Put("a".into(), 1)])));
        spec.apply(&mut s, &ShardCmd::Split(SplitSpec { child_seed: 99, version: 3 }));
        assert_eq!(s.epoch(), 3);
        // A batch planned under the old topology bounces without applying.
        let resps = spec.apply(
            &mut s,
            &ShardCmd::Batch(Batch::new(
                2,
                vec![StoreOp::Put("b".into(), 2), StoreOp::Get("a".into())],
            )),
        );
        assert_eq!(resps, vec![StoreResp::Moved { epoch: 3 }, StoreResp::Moved { epoch: 3 }]);
        assert!(!s.contains_key("b"), "a bounced batch must not write");
        // A re-planned batch at the new version applies.
        let resps =
            spec.apply(&mut s, &ShardCmd::Batch(Batch::new(3, vec![StoreOp::Get("b".into())])));
        assert_eq!(resps, vec![StoreResp::Value(None)]);
    }

    #[test]
    fn split_partitions_exactly_the_child_winners() {
        let spec = ShardSpec { seed: 42, created_at: 0 };
        let mut s = spec.init();
        for i in 0..64 {
            s.insert(format!("key/{i:02}"), i);
        }
        let child_seed = 0xfeed;
        let expect_out: Vec<Key> = s
            .keys()
            .filter(|k| rendezvous_score(child_seed, k) > rendezvous_score(42, k))
            .cloned()
            .collect();
        let resps = spec.apply(&mut s, &ShardCmd::Split(SplitSpec { child_seed, version: 1 }));
        let outgoing = match &resps[0] {
            StoreResp::Entries(entries) => entries.clone(),
            other => panic!("split returned {other:?}"),
        };
        assert_eq!(outgoing.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(), expect_out);
        assert!(!outgoing.is_empty(), "64 keys must yield some child winners");
        assert_eq!(outgoing.len() + s.len(), 64, "partition, not loss");
        for (k, _) in &outgoing {
            assert!(!s.contains_key(k), "moved keys leave the parent");
        }
    }

    #[test]
    fn merge_drains_everything_and_bounces_older_batches() {
        let spec = ShardSpec { seed: 9, created_at: 1 };
        let mut s = spec.init();
        spec.apply(&mut s, &ShardCmd::Batch(Batch::new(1, vec![StoreOp::Put("a".into(), 1)])));
        spec.apply(&mut s, &ShardCmd::Batch(Batch::new(1, vec![StoreOp::Put("b".into(), 2)])));
        let resps = spec.apply(&mut s, &ShardCmd::Merge(MergeSpec { version: 4 }));
        assert_eq!(
            resps,
            vec![StoreResp::Entries(vec![("a".into(), 1), ("b".into(), 2)])],
            "the migration set is the whole state, in key order"
        );
        assert!(s.is_empty(), "retirement leaves the child empty");
        assert_eq!(s.epoch(), 4);
        // Anything planned before the merge bounces; the shard keeps
        // answering even though it is retired.
        let resps =
            spec.apply(&mut s, &ShardCmd::Batch(Batch::new(3, vec![StoreOp::Get("a".into())])));
        assert_eq!(resps, vec![StoreResp::Moved { epoch: 4 }]);
    }

    #[test]
    fn adopt_folds_entries_in_without_bumping_the_epoch() {
        let spec = ShardSpec { seed: 3, created_at: 0 };
        let mut s = spec.init();
        spec.apply(&mut s, &ShardCmd::Batch(Batch::new(0, vec![StoreOp::Put("own".into(), 7)])));
        let adopted = std::sync::Arc::new(vec![("a".to_string(), 1u64), ("b".to_string(), 2)]);
        let resps =
            spec.apply(&mut s, &ShardCmd::Adopt(AdoptSpec { version: 2, entries: adopted }));
        assert_eq!(resps, vec![StoreResp::Value(Some(2))], "adoption reports its entry count");
        assert_eq!(s.len(), 3);
        assert_eq!(s.epoch(), 0, "adoption must not invalidate in-flight parent batches");
        // A batch planned before the merge still applies on the parent.
        let resps =
            spec.apply(&mut s, &ShardCmd::Batch(Batch::new(0, vec![StoreOp::Get("a".into())])));
        assert_eq!(resps, vec![StoreResp::Value(Some(1))]);
    }

    #[test]
    fn split_then_merge_roundtrips_the_state() {
        // Drain via a split, then feed the migration set back via Adopt:
        // the parent state is exactly what it was (modulo epoch).
        let spec = ShardSpec { seed: 11, created_at: 0 };
        let mut s = spec.init();
        for i in 0..32 {
            s.insert(format!("k{i:02}"), i);
        }
        let before: Vec<(Key, u64)> = s.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let resps =
            spec.apply(&mut s, &ShardCmd::Split(SplitSpec { child_seed: 0xfeed, version: 1 }));
        let outgoing = match &resps[0] {
            StoreResp::Entries(entries) => entries.clone(),
            other => panic!("split returned {other:?}"),
        };
        spec.apply(
            &mut s,
            &ShardCmd::Adopt(AdoptSpec { version: 2, entries: std::sync::Arc::new(outgoing) }),
        );
        let after: Vec<(Key, u64)> = s.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(after, before, "drain + adopt is the identity on the key set");
    }

    #[test]
    fn routing_keys() {
        assert_eq!(StoreOp::Get("k".into()).routing_key(), Some("k"));
        assert_eq!(StoreOp::Scan { from: "a".into(), to: "b".into() }.routing_key(), None);
    }
}
