//! The admission layer: who gets which progress class.
//!
//! A store serves two tiers of clients against every shard's `(y,x)`-live
//! universal object:
//!
//! * a **bounded VIP tier** — each VIP client owns one port of the shard
//!   spec's wait-free set `X` exclusively, so its operations are wait-free.
//!   Capacity is `x` per store: admission *fails* once `X` is exhausted,
//!   which is exactly the paper's point that hard guarantees only scale to
//!   `x` processes (Theorem 3: consensus number `x+1`);
//! * an **unbounded guest tier** — guests are obstruction-free. Any number
//!   of guest clients are admitted; they are multiplexed onto the shard
//!   spec's guest ports `Y \ X`, placed round-robin into the
//!   [`GroupLayout`]-computed groups that structure the guest ports as an
//!   arbiter cascade (§6.2 of the paper: `⌈g/width⌉` ordered groups, lower
//!   group index = earlier in the cascade = stronger asymmetric claim on
//!   the group termination property).
//!
//! [`Admission`] owns the per-shard [`Liveness`] specification; every shard
//! of one store uses the same spec, so a ticket's port is valid on all
//! shards.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use apc_progress_macros::progress;

use apc_core::group::GroupLayout;
use apc_core::liveness::Liveness;
use apc_model::ProcessSet;

/// The progress class a client was admitted into.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ProgressClass {
    /// Wait-free: the client owns a port of the wait-free set `X`.
    Vip,
    /// Obstruction-free: the client shares a guest port.
    Guest,
}

impl fmt::Display for ProgressClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProgressClass::Vip => "vip",
            ProgressClass::Guest => "guest",
        })
    }
}

/// Sizing of the admission layer (per shard; every shard is identical).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AdmissionConfig {
    /// `x`: the bounded wait-free VIP port count.
    pub vip_capacity: usize,
    /// Number of obstruction-free guest ports clients multiplex onto.
    pub guest_ports: usize,
    /// Group width for the guest arbiter cascade (the `x` of the guests'
    /// [`GroupLayout`]).
    pub guest_group_width: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { vip_capacity: 2, guest_ports: 6, guest_group_width: 2 }
    }
}

/// Errors of the admission layer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AdmissionError {
    /// All `x` VIP ports are taken; the wait-free tier is bounded by design.
    VipCapacityExhausted {
        /// The configured capacity.
        capacity: usize,
    },
    /// The configuration is unrealizable.
    BadConfig(&'static str),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::VipCapacityExhausted { capacity } => {
                write!(f, "all {capacity} wait-free VIP ports are taken")
            }
            AdmissionError::BadConfig(msg) => write!(f, "bad admission config: {msg}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A client's admission ticket: identity, class, and port placement.
///
/// Tickets are `Copy`: they are capabilities describing placement, not
/// handles. The port is valid on every shard of the issuing store.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ClientTicket {
    id: u64,
    class: ProgressClass,
    port: usize,
    group: Option<usize>,
}

impl ClientTicket {
    /// The unique client id within the issuing store.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The admitted progress class.
    pub fn class(&self) -> ProgressClass {
        self.class
    }

    /// The per-shard port this client operates through.
    pub fn port(&self) -> usize {
        self.port
    }

    /// For guests, the 1-based arbiter-cascade group of the client's port
    /// (lower = earlier in the cascade); `None` for VIPs.
    pub fn cascade_group(&self) -> Option<usize> {
        self.group
    }
}

/// The admission state of one store.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    spec: Liveness,
    layout: GroupLayout,
    next_id: AtomicU64,
    vips_issued: AtomicUsize,
    guests_issued: AtomicU64,
}

impl Admission {
    /// Builds the admission layer, deriving the per-shard [`Liveness`] spec
    /// (`(vip_capacity + guest_ports, vip_capacity)`-live) and the guest
    /// [`GroupLayout`].
    ///
    /// # Errors
    ///
    /// [`AdmissionError::BadConfig`] if there are no guest ports, the group
    /// width is zero or exceeds the guest port count, or the total port
    /// count leaves the representable range (`1..=64`).
    pub fn new(cfg: AdmissionConfig) -> Result<Self, AdmissionError> {
        if cfg.guest_ports == 0 {
            return Err(AdmissionError::BadConfig("guest_ports must be at least 1"));
        }
        if cfg.guest_group_width == 0 || cfg.guest_group_width > cfg.guest_ports {
            return Err(AdmissionError::BadConfig("guest_group_width must be in 1..=guest_ports"));
        }
        let ports = cfg.vip_capacity + cfg.guest_ports;
        if ports > 64 {
            return Err(AdmissionError::BadConfig("vip_capacity + guest_ports must be ≤ 64"));
        }
        let spec = Liveness::new(ProcessSet::first_n(ports), ProcessSet::first_n(cfg.vip_capacity))
            .map_err(|_| AdmissionError::BadConfig("liveness spec rejected the port sets"))?;
        let layout = GroupLayout::new(cfg.guest_ports, cfg.guest_group_width)
            .map_err(|_| AdmissionError::BadConfig("guest group layout rejected"))?;
        Ok(Admission {
            cfg,
            spec,
            layout,
            next_id: AtomicU64::new(0),
            vips_issued: AtomicUsize::new(0),
            guests_issued: AtomicU64::new(0),
        })
    }

    /// The sizing this layer was built with.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// The per-shard liveness specification
    /// (`(vip_capacity + guest_ports, vip_capacity)`-live).
    pub fn spec(&self) -> Liveness {
        self.spec
    }

    /// Total port count per shard (`y` of the spec).
    pub fn ports(&self) -> usize {
        self.spec.y()
    }

    /// The guest arbiter-cascade layout (over guest ports, 0-based within
    /// the guest range).
    pub fn guest_layout(&self) -> GroupLayout {
        self.layout
    }

    /// Admits a client into `class`.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::VipCapacityExhausted`] when a VIP is requested and
    /// all wait-free ports are taken. Guest admission never fails.
    /// Lock-free, not wait-free: the VIP arm's `fetch_update` is a CAS retry
    /// loop, so one admission can be starved by others — but some admission
    /// always completes. Guest admission is a single `fetch_add`.
    #[progress(lock_free)]
    pub fn admit(&self, class: ProgressClass) -> Result<ClientTicket, AdmissionError> {
        match class {
            ProgressClass::Vip => {
                let capacity = self.cfg.vip_capacity;
                let slot = self
                    .vips_issued
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                        (v < capacity).then_some(v + 1)
                    })
                    .map_err(|_| AdmissionError::VipCapacityExhausted { capacity })?;
                Ok(ClientTicket {
                    // RELAXED: the RMW's atomicity alone guarantees unique
                    // ids; no other state is published through this counter.
                    id: self.next_id.fetch_add(1, Ordering::Relaxed),
                    class: ProgressClass::Vip,
                    port: slot,
                    group: None,
                })
            }
            ProgressClass::Guest => Ok(self.admit_guest()),
        }
    }

    /// Admits a guest directly. Guest admission is unbounded, so unlike the
    /// VIP arm of [`Admission::admit`] it cannot fail — and it is wait-free:
    /// two unconditional `fetch_add`s, no retry loop.
    #[progress(wait_free)]
    pub fn admit_guest(&self) -> ClientTicket {
        // RELAXED: round-robin distribution needs only atomicity — any
        // interleaving of increments yields a valid slot.
        let k = self.guests_issued.fetch_add(1, Ordering::Relaxed);
        let guest_slot = (k % self.cfg.guest_ports as u64) as usize;
        ClientTicket {
            // RELAXED: unique ids via atomicity, as in the VIP arm.
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            class: ProgressClass::Guest,
            port: self.cfg.vip_capacity + guest_slot,
            group: Some(self.layout.group_of(guest_slot)),
        }
    }

    /// How many clients of each class have been admitted so far
    /// (`(vips, guests)`).
    #[progress(wait_free)]
    pub fn issued(&self) -> (usize, u64) {
        // RELAXED: the guest counter is diagnostic; only the VIP count
        // gates capacity and it is read with Acquire.
        (self.vips_issued.load(Ordering::Acquire), self.guests_issued.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(v: usize, g: usize, w: usize) -> AdmissionConfig {
        AdmissionConfig { vip_capacity: v, guest_ports: g, guest_group_width: w }
    }

    #[test]
    fn spec_matches_config() {
        let a = Admission::new(cfg(2, 6, 2)).unwrap();
        assert_eq!(a.spec().y(), 8);
        assert_eq!(a.spec().x(), 2);
        assert_eq!(a.ports(), 8);
        assert_eq!(a.guest_layout().m(), 3, "6 guest ports in groups of 2");
    }

    #[test]
    fn vip_tier_is_bounded() {
        let a = Admission::new(cfg(2, 2, 1)).unwrap();
        let t0 = a.admit(ProgressClass::Vip).unwrap();
        let t1 = a.admit(ProgressClass::Vip).unwrap();
        assert_eq!((t0.port(), t1.port()), (0, 1), "VIPs own distinct wait-free ports");
        assert_eq!(
            a.admit(ProgressClass::Vip),
            Err(AdmissionError::VipCapacityExhausted { capacity: 2 })
        );
        assert!(a.spec().is_wait_free_for(t0.port()));
    }

    #[test]
    fn guest_tier_is_unbounded_and_round_robins() {
        let a = Admission::new(cfg(1, 3, 1)).unwrap();
        let ports: Vec<usize> =
            (0..7).map(|_| a.admit(ProgressClass::Guest).unwrap().port()).collect();
        assert_eq!(ports, vec![1, 2, 3, 1, 2, 3, 1], "round-robin over guest ports");
        for port in ports {
            assert!(!a.spec().is_wait_free_for(port));
            assert!(a.spec().is_port(port));
        }
        assert_eq!(a.issued(), (0, 7));
    }

    #[test]
    fn guests_are_placed_into_cascade_groups() {
        let a = Admission::new(cfg(0, 6, 2)).unwrap();
        let groups: Vec<usize> = (0..6)
            .map(|_| a.admit(ProgressClass::Guest).unwrap().cascade_group().unwrap())
            .collect();
        assert_eq!(groups, vec![1, 1, 2, 2, 3, 3]);
        let vip_less = a.admit(ProgressClass::Vip);
        assert_eq!(vip_less, Err(AdmissionError::VipCapacityExhausted { capacity: 0 }));
    }

    #[test]
    fn tickets_have_unique_ids() {
        let a = Admission::new(cfg(1, 2, 2)).unwrap();
        let ids: Vec<u64> = [
            a.admit(ProgressClass::Vip).unwrap().id(),
            a.admit(ProgressClass::Guest).unwrap().id(),
            a.admit(ProgressClass::Guest).unwrap().id(),
        ]
        .into();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(Admission::new(cfg(1, 0, 1)).is_err());
        assert!(Admission::new(cfg(1, 2, 0)).is_err());
        assert!(Admission::new(cfg(1, 2, 3)).is_err());
        assert!(Admission::new(cfg(60, 8, 2)).is_err());
    }
}
