//! Durable snapshot persistence: sealed shard states on disk, group-commit
//! flushes, crash recovery.
//!
//! The persistence model is **checkpoint = durability point**: a flush
//! seals a checkpoint cell on every shard log (through the same consensus
//! path as client operations, see [`Store::checkpoint`]) and writes the
//! sealed states to disk as one atomically-renamed, versioned, checksummed
//! snapshot file. Recovery ([`StoreBuilder::recover`](crate::StoreBuilder::recover))
//! decodes the file and rebuilds each shard log at its checkpointed index
//! via `Universal::recovered`, so boot costs O(delta), never O(history).
//! Operations committed after the last flush are not durable — the
//! recovery guarantee is *prefix consistency*: the recovered store is
//! exactly the store as of the last successful flush.
//!
//! [`Persister`] adds **group commit**: concurrent `persist` calls coalesce
//! into a single seal-and-fsync cycle, the same way the ops layer batches
//! same-shard operations into one log append — one durability round
//! absorbs every request that arrived while the previous round was in
//! flight.
//!
//! # File format (version 3, little-endian)
//!
//! ```text
//! header:  "APCS" | version u32 | shard_count u32
//! topology:
//!          topo_version u64
//!          node ×shard_count: seed u64 | parent u32 (u32::MAX = root) |
//!                             created_at u64 |
//!                             retired_at u64 (u64::MAX = live)   [v3+]
//!          topo_checksum u64           (FNV-1a of the section before it)
//! frame ×shard_count:
//!          log_index u64 | epoch u64 | entry_count u64 | payload_len u64
//!          payload (entry ×entry_count: key_len u32 | key bytes | value u64)
//!          frame_checksum u64          (FNV-1a of the frame before it)
//! footer:  file_checksum u64           (FNV-1a of everything before it)
//! ```
//!
//! Version 2 added the topology section and the per-frame `epoch`: a
//! snapshot taken after live shard splits must restore the **split tree**
//! (rendezvous seeds, parents, creation versions) or recovered routing
//! would disagree with the recovered data placement. Version 3 added the
//! per-node `retired_at` **tombstone**: a snapshot taken after live merges
//! must remember which children were retired back into their parents —
//! recovery rebuilds tombstoned slots empty and keeps routing around them.
//! Older files stay readable: a v2 file simply has no tombstones (every
//! node live), and version-1 files (no topology section, no epochs, keys
//! placed by the old `FNV % S` map) are upgraded to a fresh root topology
//! with their entries re-partitioned under rendezvous placement.
//! Tombstones are validated structurally on read — a retired root, a
//! retirement version outside the topology's range, a live child under a
//! tombstone, or a tombstoned frame that still carries entries each fail
//! closed with their own typed [`PersistError::Corrupt`] message.
//!
//! Every decode failure is a typed [`PersistError`] — corruption and
//! truncation are detected by checksums and bounds checks, never by a
//! panic or silent partial state.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

use apc_obs::MetricsSnapshot;
use apc_progress_macros::progress;

use crate::admission::AdmissionError;
use crate::metrics::{elapsed_ns, PersistMetrics};
use crate::ops::ShardState;
use crate::router::{fnv1a64, ShardTopology, TopoRecord, TopologyError};
use crate::store::Store;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"APCS";

/// Current snapshot format version.
pub const VERSION: u32 = 3;

/// Errors of the persistence layer. Every failure mode is typed; decoding
/// never panics on corrupt input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PersistError {
    /// An I/O operation failed (kind + rendered message; cloneable so a
    /// group-commit outcome can be shared among coalesced waiters).
    Io {
        /// The failed operation's [`io::ErrorKind`].
        kind: io::ErrorKind,
        /// Human-readable description.
        msg: String,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file ends before a complete record could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A checksum did not match its bytes.
    ChecksumMismatch {
        /// The shard frame that failed, or `None` for the whole-file
        /// envelope checksum.
        shard: Option<u32>,
    },
    /// Structurally invalid content (e.g. trailing bytes after the footer).
    Corrupt(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { kind, msg } => write!(f, "snapshot I/O failed ({kind:?}): {msg}"),
            PersistError::BadMagic => f.write_str("not a snapshot file (bad magic)"),
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (this build reads ≤ {VERSION})")
            }
            PersistError::Truncated { needed, available } => {
                write!(f, "snapshot truncated: needed {needed} bytes, {available} available")
            }
            PersistError::ChecksumMismatch { shard: Some(s) } => {
                write!(f, "checksum mismatch in shard frame {s}")
            }
            PersistError::ChecksumMismatch { shard: None } => f.write_str("file checksum mismatch"),
            PersistError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io { kind: e.kind(), msg: e.to_string() }
    }
}

/// Errors of [`StoreBuilder::recover`](crate::StoreBuilder::recover):
/// decoding the snapshot or realizing the admission sizing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecoverError {
    /// The snapshot file could not be read or decoded.
    Persist(PersistError),
    /// The builder's admission sizing is unrealizable.
    Admission(AdmissionError),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Persist(e) => write!(f, "recovery failed: {e}"),
            RecoverError::Admission(e) => write!(f, "recovery failed: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<PersistError> for RecoverError {
    fn from(e: PersistError) -> Self {
        RecoverError::Persist(e)
    }
}

impl From<AdmissionError> for RecoverError {
    fn from(e: AdmissionError) -> Self {
        RecoverError::Admission(e)
    }
}

/// One shard's sealed state: the result of replaying its log prefix
/// `[0, log_index)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardSnapshot {
    /// The checkpointed log index (number of sealed prefix cells).
    pub log_index: u64,
    /// The sealed key→value state.
    pub state: ShardState,
}

/// A whole-store snapshot: the shard topology plus one sealed
/// [`ShardSnapshot`] per shard, in shard-id order. Produced by
/// [`Store::checkpoint`], serialized by [`StoreSnapshot::write_to`],
/// decoded by [`StoreSnapshot::read_from`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreSnapshot {
    /// The shard topology (split tree, rendezvous seeds, version) the
    /// states were sealed under.
    pub topology: ShardTopology,
    /// Per-shard sealed states, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
}

impl StoreSnapshot {
    /// Total live keys across all shards.
    pub fn entries(&self) -> u64 {
        self.shards.iter().map(|s| s.state.len() as u64).sum()
    }

    /// Serializes the snapshot into the version-3 frame format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.shards.len() * 64);
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, VERSION);
        put_u32(&mut buf, self.shards.len() as u32);
        let topo_start = buf.len();
        put_u64(&mut buf, self.topology.version());
        for s in 0..self.topology.shards() {
            let node = self.topology.node(s);
            put_u64(&mut buf, node.seed);
            put_u32(&mut buf, node.parent.unwrap_or(u32::MAX));
            put_u64(&mut buf, node.created_at);
            put_u64(&mut buf, node.retired_at.unwrap_or(u64::MAX));
        }
        let topo_checksum = fnv1a64(&buf[topo_start..]);
        put_u64(&mut buf, topo_checksum);
        for shard in &self.shards {
            let frame_start = buf.len();
            put_u64(&mut buf, shard.log_index);
            put_u64(&mut buf, shard.state.epoch());
            put_u64(&mut buf, shard.state.len() as u64);
            let payload_len_at = buf.len();
            put_u64(&mut buf, 0); // payload_len, patched below
            let payload_start = buf.len();
            for (key, value) in shard.state.iter() {
                put_u32(&mut buf, key.len() as u32);
                buf.extend_from_slice(key.as_bytes());
                put_u64(&mut buf, *value);
            }
            let payload_len = (buf.len() - payload_start) as u64;
            buf[payload_len_at..payload_len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
            let frame_checksum = fnv1a64(&buf[frame_start..]);
            put_u64(&mut buf, frame_checksum);
        }
        let file_checksum = fnv1a64(&buf);
        put_u64(&mut buf, file_checksum);
        buf
    }

    /// Decodes a snapshot from its serialized bytes.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] decode variant; never panics on corrupt input.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        // Envelope first: the trailing file checksum covers everything, so
        // arbitrary corruption is caught before structural parsing.
        let body_len = bytes
            .len()
            .checked_sub(8)
            .ok_or(PersistError::Truncated { needed: 8, available: bytes.len() })?;
        let (body, footer) = bytes.split_at(body_len);
        let stored = u64::from_le_bytes(footer.try_into().expect("footer is 8 bytes"));
        if fnv1a64(body) != stored {
            return Err(PersistError::ChecksumMismatch { shard: None });
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32()?;
        if version == 0 || version > VERSION {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let shard_count = r.u32()? as usize;
        let (topology, topo_version) = if version >= 2 {
            let topo_start = r.pos;
            let topo_version = r.u64()?;
            let mut records = Vec::with_capacity(shard_count.min(1024));
            for _ in 0..shard_count {
                let seed = r.u64()?;
                let parent = r.u32()?;
                let created_at = r.u64()?;
                // v2 predates merges: every node is live.
                let retired = if version >= 3 { r.u64()? } else { u64::MAX };
                records.push(TopoRecord {
                    seed,
                    parent: (parent != u32::MAX).then_some(parent),
                    created_at,
                    retired_at: (retired != u64::MAX).then_some(retired),
                });
            }
            let topo_expected = fnv1a64(&body[topo_start..r.pos]);
            if r.u64()? != topo_expected {
                return Err(PersistError::Corrupt("topology section checksum mismatch"));
            }
            let topology =
                ShardTopology::from_nodes(topo_version, &records).map_err(topology_error)?;
            (topology, topo_version)
        } else {
            // Version 1 predates live splits: no topology section, no
            // per-frame epoch. The writer's placement was `fresh(S)` root
            // rendezvous by construction, so upgrading on read is lossless.
            if shard_count == 0 {
                return Err(PersistError::Corrupt("a snapshot needs at least one shard"));
            }
            (ShardTopology::fresh(shard_count), 0)
        };
        let mut shards = Vec::with_capacity(shard_count.min(1024));
        for shard_id in 0..shard_count {
            let frame_start = r.pos;
            let log_index = r.u64()?;
            let epoch = if version >= 2 { r.u64()? } else { 0 };
            let entry_count = r.u64()?;
            let payload_len = r.u64()? as usize;
            let payload_end = r
                .pos
                .checked_add(payload_len)
                .ok_or(PersistError::Corrupt("payload length overflows"))?;
            let mut entries = std::collections::BTreeMap::new();
            for _ in 0..entry_count {
                let key_len = r.u32()? as usize;
                let key = std::str::from_utf8(r.take(key_len)?)
                    .map_err(|_| PersistError::Corrupt("key is not valid UTF-8"))?
                    .to_owned();
                let value = r.u64()?;
                entries.insert(key, value);
            }
            if r.pos != payload_end {
                return Err(PersistError::Corrupt("payload length disagrees with entries"));
            }
            let expected = fnv1a64(&body[frame_start..r.pos]);
            if r.u64()? != expected {
                return Err(PersistError::ChecksumMismatch { shard: Some(shard_id as u32) });
            }
            if epoch > topo_version {
                return Err(PersistError::Corrupt("shard epoch exceeds the topology version"));
            }
            if shard_id < topology.shards() && !topology.is_live(shard_id) && !entries.is_empty() {
                // A merge drains the child before tombstoning it, so a
                // tombstoned frame with entries means the file lies about
                // where data lives — those keys would be unreachable.
                return Err(PersistError::Corrupt("retired shard frame still carries entries"));
            }
            shards
                .push(ShardSnapshot { log_index, state: ShardState::with_entries(entries, epoch) });
        }
        if r.pos != body.len() {
            return Err(PersistError::Corrupt("trailing bytes after the last frame"));
        }
        if version < 2 {
            // The v1 writer placed keys by `FNV % S`, not rendezvous, so the
            // old frames do not match the upgraded topology's placement.
            // Re-partition the union of all entries under the new topology
            // (each frame keeps its own log-index watermark — the old logs
            // are gone, the index only positions the recovered cursor).
            let mut redistributed: Vec<std::collections::BTreeMap<String, u64>> =
                vec![Default::default(); shard_count];
            for shard in &shards {
                for (key, value) in shard.state.iter() {
                    redistributed[topology.shard_of(key)].insert(key.clone(), *value);
                }
            }
            for (shard, entries) in shards.iter_mut().zip(redistributed) {
                shard.state = ShardState::with_entries(entries, 0);
            }
        }
        Ok(StoreSnapshot { topology, shards })
    }

    /// Writes the snapshot durably to `path`: encode, write to a sibling
    /// temp file, fsync, atomically rename over `path`, fsync the parent
    /// directory (best-effort). A crash at any point leaves either the old
    /// snapshot or the new one — never a torn file.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on any filesystem failure.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        // Unique per writer: concurrent flushes to one path must never share
        // a temp file, or one writer's truncate would tear the other's bytes
        // before its rename.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = path.as_ref();
        let mut tmp_name = path.file_name().unwrap_or_default().to_owned();
        tmp_name.push(format!(
            ".{}-{}.tmp",
            std::process::id(),
            // RELAXED: only uniqueness matters, which atomicity provides.
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let tmp = path.with_file_name(tmp_name);
        let publish = || -> Result<(), PersistError> {
            {
                let mut file = fs::File::create(&tmp)?;
                file.write_all(&self.encode())?;
                file.sync_all()?;
            }
            fs::rename(&tmp, path)?;
            Ok(())
        };
        let result = publish();
        if result.is_err() {
            // Don't leak the uniquely-named temp file (retry loops would
            // otherwise accumulate one orphan per failed flush).
            let _ = fs::remove_file(&tmp);
            return result;
        }
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Durability of the rename itself; non-fatal where unsupported.
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and decodes a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] if the file cannot be read, otherwise any
    /// decode variant.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::decode(&fs::read(path)?)
    }
}

/// Group-commit snapshot flusher: many concurrent durability requests, one
/// seal-and-fsync cycle.
///
/// [`Persister::persist`] seals a checkpoint on every shard and writes the
/// snapshot file — but concurrent callers coalesce: while one flush is in
/// flight, arriving requests park; the next flush covers all of them at
/// once (their checkpoints are sealed by that single cycle). This is the
/// durability-layer twin of the ops layer's same-shard batching.
///
/// # Examples
///
/// ```no_run
/// use apc_store::{StoreBuilder, persist::Persister};
///
/// let store = StoreBuilder::new().build().unwrap();
/// let persister = Persister::new("store.snapshot");
/// store.client(store.admit_guest()).put("k", 1);
/// persister.persist(&store).unwrap();
/// let recovered = StoreBuilder::new().recover("store.snapshot").unwrap();
/// ```
#[derive(Debug)]
pub struct Persister {
    path: PathBuf,
    state: Mutex<FlushState>,
    arrived: Condvar,
    /// Flush instruments — atomics outside the state mutex, so scraping
    /// never queues behind an in-flight fsync.
    metrics: PersistMetrics,
    /// The op-granular WAL this persister coordinates with
    /// ([`Persister::with_wal`]): each checkpoint seal rotates it first
    /// and truncates the pre-rotation segments once the snapshot rename
    /// lands.
    wal: Option<std::sync::Arc<crate::wal::Wal>>,
}

#[derive(Debug, Default)]
struct FlushState {
    /// Generation of the newest durability request.
    requested: u64,
    /// Generation through which flushes have completed.
    completed: u64,
    /// Generation through which a *successful* flush has completed: every
    /// request at or below this line is durably on disk (later failures
    /// cannot un-write an atomically renamed snapshot).
    completed_ok: u64,
    /// Whether a leader is currently flushing.
    flushing: bool,
    /// The most recent flush failure (returned to waiters whose requests no
    /// successful flush has covered).
    last_error: Option<PersistError>,
    /// Number of physical seal-and-write cycles performed.
    flushes: u64,
}

/// Unwind protection for the flush leader: if sealing or writing panics
/// (e.g. a poisoned port mutex), hand leadership back and wake the parked
/// waiters so they fail loudly in their own threads instead of hanging on
/// the condvar forever.
struct LeaderGuard<'a>(&'a Persister);

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Ok(mut st) = self.0.state.lock() {
                st.flushing = false;
            }
            self.0.arrived.notify_all();
        }
    }
}

impl Persister {
    /// A persister flushing snapshots to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Persister {
            path: path.into(),
            state: Mutex::new(FlushState::default()),
            arrived: Condvar::new(),
            metrics: PersistMetrics::new(),
            wal: None,
        }
    }

    /// Couples this persister to an op-granular [`Wal`](crate::wal::Wal):
    /// every checkpoint seal rotates the WAL to a fresh segment *before*
    /// sealing and truncates the pre-rotation segments once the snapshot
    /// rename is durable — so the WAL only ever holds the delta since the
    /// last successful snapshot, and recovery is snapshot + short replay.
    ///
    /// Safe ordering argument: a frame in a pre-rotation segment logs a
    /// commit whose log cell is at or below the index this cycle seals, so
    /// its effect is inside the snapshot (and replaying it anyway would be
    /// an idempotent no-op). If the snapshot write *fails*, nothing is
    /// truncated and the frames stay replayable.
    pub fn with_wal(mut self, wal: std::sync::Arc<crate::wal::Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<&std::sync::Arc<crate::wal::Wal>> {
        self.wal.as_ref()
    }

    /// A wait-free scrape of the persister's metric series (flush cycles,
    /// failures, coalesced requests, flush latency), ready to
    /// [`merge`](MetricsSnapshot::merge) into a
    /// [`Store::scrape`](crate::Store::scrape) snapshot. Reads atomics
    /// only — never the flush-state mutex — so a dashboard poller cannot
    /// queue behind an in-flight fsync.
    #[progress(wait_free)]
    pub fn scrape(&self) -> MetricsSnapshot {
        let mut samples = self.metrics.samples();
        if let Some(wal) = &self.wal {
            samples.extend(wal.scrape().samples);
        }
        MetricsSnapshot { samples }
    }

    /// The snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of physical flush cycles performed so far. With `k`
    /// concurrent [`Persister::persist`] calls this is between 1 and `k` —
    /// the group-commit win is `k − flushes()`.
    #[progress(blocking)]
    pub fn flushes(&self) -> u64 {
        self.state.lock().expect("persister state poisoned").flushes
    }

    /// Makes the store's current state durable: seals a checkpoint on every
    /// shard and writes the snapshot file, coalescing with concurrent
    /// callers (group commit). On return, every operation that committed
    /// before this call is on disk.
    ///
    /// Returns the number of flush cycles completed when this request was
    /// covered.
    ///
    /// # Errors
    ///
    /// `Ok` iff a successful flush covered this request — then its data is
    /// durably on disk regardless of what later cycles did (snapshots are
    /// whole-store and atomically renamed, so neither a later failure nor
    /// a later success can un-write it). `Err` with the latest flush error
    /// otherwise.
    #[progress(blocking)]
    pub fn persist(&self, store: &Store) -> Result<u64, PersistError> {
        let mut st = self.state.lock().expect("persister state poisoned");
        st.requested += 1;
        let my_gen = st.requested;
        // Whether this caller performed a physical cycle itself; a request
        // covered without ever leading was coalesced into someone else's.
        let mut led = false;
        loop {
            if st.completed >= my_gen {
                if !led {
                    self.metrics.record_coalesced();
                }
                return if st.completed_ok >= my_gen {
                    Ok(st.flushes)
                } else {
                    Err(st.last_error.clone().expect("a failed covering flush recorded its error"))
                };
            }
            if !st.flushing {
                // Become the leader: this flush covers every request made
                // before the target is captured here; requests arriving
                // while the flush is in flight wait for the next cycle
                // (their operations may postdate this cycle's seal).
                st.flushing = true;
                let target = st.requested;
                drop(st);
                let guard = LeaderGuard(self);
                let start = std::time::Instant::now();
                let outcome = self.seal_cycle(store);
                std::mem::forget(guard); // normal path: finalize below
                self.metrics.record_flush(elapsed_ns(start), outcome.is_ok());
                led = true;
                st = self.state.lock().expect("persister state poisoned");
                st.flushing = false;
                st.completed = target;
                st.flushes += 1;
                match outcome {
                    Ok(()) => st.completed_ok = target,
                    Err(e) => st.last_error = Some(e),
                }
                self.arrived.notify_all();
            } else {
                st = self.arrived.wait(st).expect("persister state poisoned");
            }
        }
    }

    /// One physical seal cycle. With a WAL attached: rotate it to a fresh
    /// segment, seal and write the snapshot, then truncate the
    /// pre-rotation segments — strictly in that order, so a failure at
    /// any point leaves every un-snapshotted frame replayable (see
    /// [`Persister::with_wal`]).
    #[progress(blocking)]
    fn seal_cycle(&self, store: &Store) -> Result<(), PersistError> {
        let cut = match &self.wal {
            Some(wal) => Some(wal.rotate()?),
            None => None,
        };
        store.checkpoint().write_to(&self.path)?;
        if let (Some(wal), Some(cut)) = (&self.wal, cut) {
            wal.truncate_before(cut);
        }
        Ok(())
    }
}

/// Removes orphaned `<snapshot>.<pid>-<seq>.tmp` siblings that a crash
/// mid-[`StoreSnapshot::write_to`] left next to `path` — a temp file that
/// was written but never renamed. Such a file is garbage by construction
/// (a completed write renames its temp away atomically), so recovery must
/// neither trust it nor trip over it; it is swept before the snapshot is
/// read. Returns how many files were removed.
///
/// Only safe at boot, before any concurrent flusher targets `path`: a
/// live [`Persister`]'s in-flight temp file would match the pattern too.
pub(crate) fn sweep_orphan_tmps(path: &Path) -> u64 {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else { return 0 };
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = format!("{name}.");
    let Ok(entries) = fs::read_dir(&dir) else { return 0 };
    let mut swept = 0;
    for entry in entries.flatten() {
        let file_name = entry.file_name();
        let Some(s) = file_name.to_str() else { continue };
        if s.starts_with(&prefix) && s.ends_with(".tmp") && fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// Maps a structural topology defect to its typed decode error, keeping
/// tombstone corruption distinguishable from a malformed split forest.
fn topology_error(e: TopologyError) -> PersistError {
    PersistError::Corrupt(match e {
        TopologyError::Empty => "a snapshot needs at least one shard",
        TopologyError::ForwardParent => "topology nodes do not form a split forest",
        TopologyError::CreatedBeyondVersion => "node creation version exceeds the topology version",
        TopologyError::RetiredRoot => "tombstone on a root shard",
        TopologyError::RetiredOutOfRange => "tombstone outside the topology's version range",
        TopologyError::LiveChildOfTombstone => "live shard parented to a tombstone",
    })
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over the snapshot body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Corrupt("length overflows"))?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated {
                needed: n,
                available: self.buf.len() - self.pos,
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreSnapshot {
        let mut a = ShardState::new();
        a.insert("alpha".into(), 1);
        a.insert("beta".into(), 2);
        let mut b = ShardState::new();
        b.insert("γλώσσα".into(), 3); // multi-byte UTF-8 keys round-trip
        StoreSnapshot {
            topology: ShardTopology::fresh(2),
            shards: vec![
                ShardSnapshot { log_index: 7, state: a },
                ShardSnapshot { log_index: 11, state: b },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let decoded = StoreSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.entries(), 3);
    }

    #[test]
    fn empty_store_roundtrip() {
        let snap = StoreSnapshot {
            topology: ShardTopology::fresh(1),
            shards: vec![ShardSnapshot { log_index: 0, state: ShardState::new() }],
        };
        assert_eq!(StoreSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn split_topology_and_epochs_roundtrip() {
        // A post-split snapshot: 3 shards, shard 0 split once (child = 2),
        // parent and child carrying the split epoch.
        let (topology, child) = ShardTopology::fresh(2).split(0);
        let mut parent_state = std::collections::BTreeMap::new();
        parent_state.insert("kept".to_string(), 1u64);
        let mut child_state = std::collections::BTreeMap::new();
        child_state.insert("moved".to_string(), 2u64);
        let snap = StoreSnapshot {
            topology: topology.clone(),
            shards: vec![
                ShardSnapshot { log_index: 9, state: ShardState::with_entries(parent_state, 1) },
                ShardSnapshot { log_index: 4, state: ShardState::new() },
                ShardSnapshot { log_index: 0, state: ShardState::with_entries(child_state, 1) },
            ],
        };
        let decoded = StoreSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.topology.version(), 1);
        assert_eq!(decoded.topology.node(child).parent, Some(0));
        assert_eq!(decoded.shards[0].state.epoch(), 1);
        assert_eq!(decoded.shards[2].state.epoch(), 1);
        // Routing through the decoded topology matches the original.
        for key in ["kept", "moved", "other/17"] {
            assert_eq!(decoded.topology.shard_of(key), topology.shard_of(key));
        }
    }

    #[test]
    fn merged_tree_snapshot_roundtrips() {
        // Split shard 0 twice, merge the later child back: the snapshot
        // must carry the tombstone and decode to the identical topology.
        let (t1, c1) = ShardTopology::fresh(2).split(0);
        let (t2, c2) = t1.split(0);
        let (t3, parent) = t2.merge(c2).expect("last live child merges");
        assert_eq!(parent, 0);
        let mut parent_state = std::collections::BTreeMap::new();
        parent_state.insert("returned".to_string(), 9u64);
        let snap = StoreSnapshot {
            topology: t3.clone(),
            shards: vec![
                ShardSnapshot { log_index: 12, state: ShardState::with_entries(parent_state, 2) },
                ShardSnapshot { log_index: 4, state: ShardState::new() },
                ShardSnapshot {
                    log_index: 7,
                    state: ShardState::with_entries(Default::default(), 1),
                },
                // The tombstoned child: empty, epoch = its retirement.
                ShardSnapshot {
                    log_index: 3,
                    state: ShardState::with_entries(Default::default(), 3),
                },
            ],
        };
        let decoded = StoreSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.topology.version(), 3);
        assert!(!decoded.topology.is_live(c2), "the tombstone survives the roundtrip");
        assert_eq!(decoded.topology.live_shards(), 3);
        for key in ["returned", "a", "zz/17"] {
            assert_eq!(decoded.topology.shard_of(key), t3.shard_of(key));
        }
        let _ = c1;
    }

    #[test]
    fn tombstone_corruption_fails_closed_with_typed_errors() {
        // Re-seal the topology + file checksums around hand-crafted
        // tombstone defects: each must surface its own Corrupt message,
        // not a checksum error and not a panic.
        let encode_with_topology = |records: &[(u64, u32, u64, u64)], topo_version: u64| {
            let mut buf = Vec::new();
            buf.extend_from_slice(&MAGIC);
            put_u32(&mut buf, VERSION);
            put_u32(&mut buf, records.len() as u32);
            let topo_start = buf.len();
            put_u64(&mut buf, topo_version);
            for &(seed, parent, created_at, retired_at) in records {
                put_u64(&mut buf, seed);
                put_u32(&mut buf, parent);
                put_u64(&mut buf, created_at);
                put_u64(&mut buf, retired_at);
            }
            let topo_checksum = fnv1a64(&buf[topo_start..]);
            put_u64(&mut buf, topo_checksum);
            for _ in records {
                let frame_start = buf.len();
                put_u64(&mut buf, 0); // log_index
                put_u64(&mut buf, 0); // epoch
                put_u64(&mut buf, 0); // entry_count
                put_u64(&mut buf, 0); // payload_len
                let frame_checksum = fnv1a64(&buf[frame_start..]);
                put_u64(&mut buf, frame_checksum);
            }
            let file_checksum = fnv1a64(&buf);
            put_u64(&mut buf, file_checksum);
            buf
        };
        // A retired root.
        let bytes = encode_with_topology(&[(1, u32::MAX, 0, 1)], 1);
        assert_eq!(
            StoreSnapshot::decode(&bytes).unwrap_err(),
            PersistError::Corrupt("tombstone on a root shard")
        );
        // Retirement beyond the topology version.
        let bytes = encode_with_topology(&[(1, u32::MAX, 0, u64::MAX), (2, 0, 1, 9)], 2);
        assert_eq!(
            StoreSnapshot::decode(&bytes).unwrap_err(),
            PersistError::Corrupt("tombstone outside the topology's version range")
        );
        // A live child under a tombstone.
        let bytes = encode_with_topology(
            &[(1, u32::MAX, 0, u64::MAX), (2, 0, 1, 3), (3, 1, 2, u64::MAX)],
            3,
        );
        assert_eq!(
            StoreSnapshot::decode(&bytes).unwrap_err(),
            PersistError::Corrupt("live shard parented to a tombstone")
        );

        // A tombstoned frame that still carries entries.
        let (t1, c) = ShardTopology::fresh(1).split(0);
        let (t2, _) = t1.merge(c).unwrap();
        let mut orphan = std::collections::BTreeMap::new();
        orphan.insert("ghost".to_string(), 1u64);
        let snap = StoreSnapshot {
            topology: t2,
            shards: vec![
                ShardSnapshot { log_index: 1, state: ShardState::new() },
                ShardSnapshot { log_index: 1, state: ShardState::with_entries(orphan, 2) },
            ],
        };
        assert_eq!(
            StoreSnapshot::decode(&snap.encode()).unwrap_err(),
            PersistError::Corrupt("retired shard frame still carries entries")
        );
    }

    /// One hand-encoded v2 frame: `(log_index, epoch, entries)`.
    type V2Frame<'a> = (u64, u64, Vec<(&'a str, u64)>);

    /// Hand-encodes a version-2 snapshot (pre-tombstone format): topology
    /// nodes without `retired_at`, epoch-ful frames, envelope.
    fn encode_v2(topo_version: u64, nodes: &[(u64, u32, u64)], shards: &[V2Frame]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, 2);
        put_u32(&mut buf, shards.len() as u32);
        let topo_start = buf.len();
        put_u64(&mut buf, topo_version);
        for &(seed, parent, created_at) in nodes {
            put_u64(&mut buf, seed);
            put_u32(&mut buf, parent);
            put_u64(&mut buf, created_at);
        }
        let topo_checksum = fnv1a64(&buf[topo_start..]);
        put_u64(&mut buf, topo_checksum);
        for (log_index, epoch, entries) in shards {
            let frame_start = buf.len();
            put_u64(&mut buf, *log_index);
            put_u64(&mut buf, *epoch);
            put_u64(&mut buf, entries.len() as u64);
            let payload_len_at = buf.len();
            put_u64(&mut buf, 0);
            let payload_start = buf.len();
            for (key, value) in entries {
                put_u32(&mut buf, key.len() as u32);
                buf.extend_from_slice(key.as_bytes());
                put_u64(&mut buf, *value);
            }
            let payload_len = (buf.len() - payload_start) as u64;
            buf[payload_len_at..payload_len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
            let sum = fnv1a64(&buf[frame_start..]);
            put_u64(&mut buf, sum);
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    #[test]
    fn version2_snapshots_upgrade_on_read() {
        // A PR-4-era file: a split topology with no tombstone column. The
        // upgrade reads every node as live; placement and data are
        // untouched (v2 placement IS v3 placement with zero tombstones).
        let (topology, child) = ShardTopology::fresh(2).split(0);
        let nodes: Vec<(u64, u32, u64)> = (0..topology.shards())
            .map(|s| {
                let n = topology.node(s);
                (n.seed, n.parent.map_or(u32::MAX, |p| p), n.created_at)
            })
            .collect();
        let keyset = ["alpha", "beta", "gamma", "delta"];
        let mut frames: Vec<V2Frame> = vec![(5, 1, vec![]), (3, 0, vec![]), (1, 1, vec![])];
        for (i, key) in keyset.iter().enumerate() {
            frames[topology.shard_of(key)].2.push((key, i as u64));
        }
        let bytes = encode_v2(topology.version(), &nodes, &frames);
        let decoded = StoreSnapshot::decode(&bytes).expect("v2 files stay readable");
        assert_eq!(decoded.topology, topology, "a v2 topology upgrades to all-live nodes");
        assert_eq!(decoded.topology.live_shards(), 3);
        assert_eq!(decoded.entries(), keyset.len() as u64);
        for (i, key) in keyset.iter().enumerate() {
            let owner = decoded.topology.shard_of(key);
            assert_eq!(decoded.shards[owner].state.get(*key), Some(&(i as u64)));
        }
        assert_eq!(decoded.shards[child].state.epoch(), 1, "v2 epochs survive the upgrade");
        assert_eq!(decoded.shards[0].log_index, 5);
    }

    /// Hand-encodes a version-1 snapshot (pre-topology format): header,
    /// epoch-less frames, envelope.
    fn encode_v1(shards: &[(u64, Vec<(&str, u64)>)]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, shards.len() as u32);
        for (log_index, entries) in shards {
            let frame_start = buf.len();
            put_u64(&mut buf, *log_index);
            put_u64(&mut buf, entries.len() as u64);
            let payload_len_at = buf.len();
            put_u64(&mut buf, 0);
            let payload_start = buf.len();
            for (key, value) in entries {
                put_u32(&mut buf, key.len() as u32);
                buf.extend_from_slice(key.as_bytes());
                put_u64(&mut buf, *value);
            }
            let payload_len = (buf.len() - payload_start) as u64;
            buf[payload_len_at..payload_len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
            let sum = fnv1a64(&buf[frame_start..]);
            put_u64(&mut buf, sum);
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    #[test]
    fn version1_snapshots_upgrade_on_read() {
        // A PR-3-era file: 2 shards, keys placed by the old `FNV % S` map.
        let bytes = encode_v1(&[(7, vec![("alpha", 1), ("beta", 2)]), (11, vec![("gamma", 3)])]);
        let decoded = StoreSnapshot::decode(&bytes).expect("v1 files stay readable");
        assert_eq!(decoded.topology, ShardTopology::fresh(2));
        assert_eq!(decoded.entries(), 3, "every v1 entry survives the upgrade");
        // The upgrade re-partitions under rendezvous placement: every key
        // now lives on exactly the shard the new router sends it to.
        for (key, value) in [("alpha", 1u64), ("beta", 2), ("gamma", 3)] {
            let owner = decoded.topology.shard_of(key);
            assert_eq!(decoded.shards[owner].state.get(key), Some(&value));
        }
        assert_eq!(decoded.shards[0].state.epoch(), 0);
        // Watermarks are preserved per shard id.
        assert_eq!(decoded.shards[0].log_index, 7);
        assert_eq!(decoded.shards[1].log_index, 11);
    }

    #[test]
    fn corrupt_topology_section_is_distinguishable() {
        // Flip a byte inside the topology node records and reseal the
        // envelope: the error must point at the topology section, not the
        // whole-file checksum.
        let mut bytes = sample().encode();
        bytes[20] ^= 0x10; // inside the topology section (after the 12-byte header)
        let cut = bytes.len() - 8;
        bytes.truncate(cut);
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            StoreSnapshot::decode(&bytes).unwrap_err(),
            PersistError::Corrupt("topology section checksum mismatch")
        );
    }

    #[test]
    fn epoch_beyond_topology_version_is_corrupt() {
        let mut snap = sample();
        snap.shards[0] =
            ShardSnapshot { log_index: 7, state: ShardState::with_entries(Default::default(), 5) };
        assert_eq!(
            StoreSnapshot::decode(&snap.encode()).unwrap_err(),
            PersistError::Corrupt("shard epoch exceeds the topology version")
        );
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let snap = sample();
        let good = snap.encode();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            let err = StoreSnapshot::decode(&bad)
                .expect_err(&format!("flip at byte {i} must not decode"));
            // The envelope checksum catches every single-byte flip.
            assert_eq!(err, PersistError::ChecksumMismatch { shard: None });
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let good = sample().encode();
        for len in 0..good.len() {
            let err = StoreSnapshot::decode(&good[..len])
                .expect_err(&format!("truncation to {len} bytes must not decode"));
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                ),
                "truncation to {len} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        // Re-seal the envelope so the header checks themselves are hit.
        let reseal = |mut body: Vec<u8>| {
            let cut = body.len() - 8;
            body.truncate(cut);
            let sum = fnv1a64(&body);
            body.extend_from_slice(&sum.to_le_bytes());
            body
        };
        let mut bad_magic = sample().encode();
        bad_magic[0] = b'X';
        assert_eq!(StoreSnapshot::decode(&reseal(bad_magic)).unwrap_err(), PersistError::BadMagic);
        let mut bad_version = sample().encode();
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            StoreSnapshot::decode(&reseal(bad_version)).unwrap_err(),
            PersistError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        // Insert junk between the last frame and the footer, resealing.
        let cut = bytes.len() - 8;
        bytes.truncate(cut);
        bytes.extend_from_slice(b"junk");
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            StoreSnapshot::decode(&bytes).unwrap_err(),
            PersistError::Corrupt("trailing bytes after the last frame")
        );
    }

    #[test]
    fn errors_render() {
        let io: PersistError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::ChecksumMismatch { shard: Some(3) }.to_string().contains('3'));
        assert!(RecoverError::from(PersistError::BadMagic).to_string().contains("recovery"));
        assert!(RecoverError::from(AdmissionError::BadConfig("x")).to_string().contains("x"));
    }
}
