//! Store-side metric registry: the wait-free record half of the
//! observability layer.
//!
//! `StoreMetrics` is an always-on field of [`Store`](crate::Store),
//! fed exclusively from paths that are already wait-free (or bounded
//! wait-free) for their tier: commit bookkeeping rides
//! `commit_vip`/`commit_guest`, reconfiguration events ride the admin-side
//! split/merge drivers, and elastic decisions ride the guest-tier tick.
//! Every record method is a bounded number of the caller's own atomic
//! steps ([`apc_obs`] primitives only), so instrumentation never weakens a
//! path's progress class — `apc-lint --deny` proves it.
//!
//! The read half is [`Store::scrape`](crate::Store::scrape), which folds
//! these instruments together with the wait-free per-shard digest
//! snapshots into one [`MetricsSnapshot`](apc_obs::MetricsSnapshot). See `METRICS.md` at the repo
//! root for the full series catalogue.

use apc_obs::{Counter, FixedHistogram, Gauge, Sample, SampleValue};
use apc_progress_macros::progress;

use crate::admission::ProgressClass;
use crate::elastic::ElasticDecision;

/// Commit→apply latency bucket bounds, in nanoseconds: 1µs…64ms in
/// powers of four, sized for an in-memory consensus append (µs-scale) with
/// headroom for scheduler preemption outliers.
const COMMIT_LATENCY_NS_BOUNDS: [u64; 9] =
    [1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000, 4_000_000, 16_000_000, 64_000_000];

/// Batch-size bucket bounds (operations per committed sub-batch).
const BATCH_OPS_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Converts an [`std::time::Instant`] origin into elapsed nanoseconds,
/// saturating at `u64::MAX` (585 years of latency is off the chart
/// anyway).
pub(crate) fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The per-tier commit instruments: VIP and guest are separate series
/// end-to-end, mirroring the paper's asymmetric per-tier guarantees.
struct TierMetrics {
    /// Committed sub-batches (one universal-log append each).
    commits: Counter,
    /// Operations bounced [`StoreResp::Moved`](crate::ops::StoreResp) by a
    /// reconfiguration epoch check (re-planned by the client, never lost).
    moved_ops: Counter,
    /// Operations per committed sub-batch.
    batch_ops: FixedHistogram,
    /// Wall-clock latency of one commit (plan hand-off to responses).
    latency_ns: FixedHistogram,
}

impl TierMetrics {
    fn new() -> Self {
        TierMetrics {
            commits: Counter::new(),
            moved_ops: Counter::new(),
            batch_ops: FixedHistogram::new(&BATCH_OPS_BOUNDS),
            latency_ns: FixedHistogram::new(&COMMIT_LATENCY_NS_BOUNDS),
        }
    }

    /// Records one committed sub-batch: three bounded instrument updates.
    #[progress(wait_free)]
    fn record(&self, ops: u64, latency_ns: u64, moved_ops: u64) {
        self.commits.inc();
        self.batch_ops.observe(ops);
        self.latency_ns.observe(latency_ns);
        if moved_ops > 0 {
            self.moved_ops.add(moved_ops);
        }
    }

    /// Appends this tier's samples, labelled `tier`.
    #[progress(wait_free)]
    fn append_samples(&self, out: &mut Vec<Sample>, tier: &'static str) {
        let label = || vec![("tier", String::from(tier))];
        out.push(Sample {
            name: "store_commits_total",
            help: "Committed sub-batches (one universal-log append each).",
            labels: label(),
            value: SampleValue::Counter(self.commits.get()),
        });
        out.push(Sample {
            name: "store_moved_ops_total",
            help: "Operations bounced Moved by a reconfiguration epoch check.",
            labels: label(),
            value: SampleValue::Counter(self.moved_ops.get()),
        });
        out.push(Sample {
            name: "store_commit_ops",
            help: "Operations per committed sub-batch.",
            labels: label(),
            value: SampleValue::Histogram(self.batch_ops.snapshot()),
        });
        out.push(Sample {
            name: "store_commit_latency_ns",
            help: "Commit latency in nanoseconds (plan hand-off to responses).",
            labels: label(),
            value: SampleValue::Histogram(self.latency_ns.snapshot()),
        });
    }
}

/// The store's metric registry. All record methods are wait-free; the
/// caller's progress class is never weakened by instrumentation.
pub(crate) struct StoreMetrics {
    vip: TierMetrics,
    guest: TierMetrics,
    /// Applied splits / merges / adoptions (an adoption is the parent-side
    /// half of every merge).
    splits: Counter,
    merges: Counter,
    adopts: Counter,
    /// Topology version installed by the most recent reconfiguration.
    reconfig_last_version: Gauge,
    /// Elastic-engine decisions by kind, and how many were applied.
    elastic_split_decisions: Counter,
    elastic_merge_decisions: Counter,
    elastic_hold_decisions: Counter,
    elastic_applied_splits: Counter,
    elastic_applied_merges: Counter,
    /// Checkpoint seals triggered by the auto-checkpoint cadence.
    auto_checkpoints: Counter,
    /// Log cells replayed while booting this store (≈0 unless recovering
    /// ahead of a checkpoint anchor; set once at build time).
    recovery_replay_steps: Gauge,
}

impl StoreMetrics {
    pub(crate) fn new() -> Self {
        StoreMetrics {
            vip: TierMetrics::new(),
            guest: TierMetrics::new(),
            splits: Counter::new(),
            merges: Counter::new(),
            adopts: Counter::new(),
            reconfig_last_version: Gauge::new(),
            elastic_split_decisions: Counter::new(),
            elastic_merge_decisions: Counter::new(),
            elastic_hold_decisions: Counter::new(),
            elastic_applied_splits: Counter::new(),
            elastic_applied_merges: Counter::new(),
            auto_checkpoints: Counter::new(),
            recovery_replay_steps: Gauge::new(),
        }
    }

    /// Records one committed sub-batch on `tier`'s series.
    #[progress(wait_free)]
    pub(crate) fn record_commit(
        &self,
        tier: ProgressClass,
        ops: u64,
        latency_ns: u64,
        moved_ops: u64,
    ) {
        match tier {
            ProgressClass::Vip => self.vip.record(ops, latency_ns, moved_ops),
            ProgressClass::Guest => self.guest.record(ops, latency_ns, moved_ops),
        }
    }

    /// Records an applied split installing topology `version`.
    #[progress(wait_free)]
    pub(crate) fn record_split(&self, version: u64) {
        self.splits.inc();
        self.reconfig_last_version.set(version);
    }

    /// Records an applied merge retirement installing topology `version`.
    #[progress(wait_free)]
    pub(crate) fn record_merge(&self, version: u64) {
        self.merges.inc();
        self.reconfig_last_version.set(version);
    }

    /// Records the parent-side adoption half of a merge.
    #[progress(wait_free)]
    pub(crate) fn record_adopt(&self) {
        self.adopts.inc();
    }

    /// Records one elastic-engine evaluation outcome.
    #[progress(wait_free)]
    pub(crate) fn record_elastic(&self, decision: ElasticDecision, applied: bool) {
        match decision {
            ElasticDecision::Split(_) => {
                self.elastic_split_decisions.inc();
                if applied {
                    self.elastic_applied_splits.inc();
                }
            }
            ElasticDecision::Merge(_) => {
                self.elastic_merge_decisions.inc();
                if applied {
                    self.elastic_applied_merges.inc();
                }
            }
            ElasticDecision::Hold => self.elastic_hold_decisions.inc(),
        }
    }

    /// Records one cadence-triggered checkpoint seal.
    #[progress(wait_free)]
    pub(crate) fn record_auto_checkpoint(&self) {
        self.auto_checkpoints.inc();
    }

    /// Sets the boot-time replay-work gauge (once, at build).
    #[progress(wait_free)]
    pub(crate) fn set_recovery_replay_steps(&self, steps: u64) {
        self.recovery_replay_steps.set(steps);
    }

    /// The registry's samples (tier series first, then event counters).
    ///
    /// Counter reads go through the instrument fields directly (never
    /// through borrowed locals) so the call graph stays statically
    /// resolvable for `apc-lint`'s reachability rule.
    #[progress(wait_free)]
    pub(crate) fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        self.vip.append_samples(&mut out, "vip");
        self.guest.append_samples(&mut out, "guest");
        let reconfigs = [
            ("split", self.splits.get()),
            ("merge", self.merges.get()),
            ("adopt", self.adopts.get()),
        ];
        for (kind, count) in reconfigs {
            out.push(Sample {
                name: "store_reconfigs_total",
                help: "Applied reconfiguration events by kind.",
                labels: vec![("kind", String::from(kind))],
                value: SampleValue::Counter(count),
            });
        }
        out.push(Sample {
            name: "store_reconfig_last_version",
            help: "Topology version installed by the most recent reconfiguration.",
            labels: Vec::new(),
            value: SampleValue::Gauge(self.reconfig_last_version.get()),
        });
        let decisions = [
            ("split", self.elastic_split_decisions.get()),
            ("merge", self.elastic_merge_decisions.get()),
            ("hold", self.elastic_hold_decisions.get()),
        ];
        for (decision, count) in decisions {
            out.push(Sample {
                name: "store_elastic_decisions_total",
                help: "Elastic-engine policy decisions by kind.",
                labels: vec![("decision", String::from(decision))],
                value: SampleValue::Counter(count),
            });
        }
        let applied = [
            ("split", self.elastic_applied_splits.get()),
            ("merge", self.elastic_applied_merges.get()),
        ];
        for (decision, count) in applied {
            out.push(Sample {
                name: "store_elastic_applied_total",
                help: "Elastic-engine decisions that were applied to the topology.",
                labels: vec![("decision", String::from(decision))],
                value: SampleValue::Counter(count),
            });
        }
        out.push(Sample {
            name: "store_auto_checkpoints_total",
            help: "Checkpoint seals triggered by the auto-checkpoint cadence.",
            labels: Vec::new(),
            value: SampleValue::Counter(self.auto_checkpoints.get()),
        });
        out.push(Sample {
            name: "store_recovery_replay_steps",
            help: "Log cells replayed while booting this store (set at build).",
            labels: Vec::new(),
            value: SampleValue::Gauge(self.recovery_replay_steps.get()),
        });
        out
    }
}

/// Flush-latency bucket bounds, in nanoseconds: 0.1ms…1s — fsync-bound
/// cycles live in the millisecond range.
const FLUSH_LATENCY_NS_BOUNDS: [u64; 7] =
    [100_000, 1_000_000, 4_000_000, 16_000_000, 64_000_000, 256_000_000, 1_000_000_000];

/// The [`Persister`](crate::persist::Persister)'s instruments. Recorded
/// from the (blocking) flush path, but kept in atomics **outside** the
/// flush-state mutex so [`PersistMetrics::samples`] — and through it
/// `Persister::scrape` — stays wait-free: a dashboard never queues behind
/// an in-flight fsync.
#[derive(Debug)]
pub(crate) struct PersistMetrics {
    /// Physical seal-and-write cycles.
    flushes: Counter,
    /// Cycles whose write failed (the atomic rename keeps earlier
    /// successful snapshots intact).
    failures: Counter,
    /// Durability requests satisfied by another caller's cycle — the
    /// group-commit win.
    coalesced: Counter,
    /// Wall-clock latency of one seal-and-write cycle.
    flush_latency_ns: FixedHistogram,
}

impl PersistMetrics {
    pub(crate) fn new() -> Self {
        PersistMetrics {
            flushes: Counter::new(),
            failures: Counter::new(),
            coalesced: Counter::new(),
            flush_latency_ns: FixedHistogram::new(&FLUSH_LATENCY_NS_BOUNDS),
        }
    }

    /// Records one physical flush cycle and its outcome.
    #[progress(wait_free)]
    pub(crate) fn record_flush(&self, latency_ns: u64, ok: bool) {
        self.flushes.inc();
        self.flush_latency_ns.observe(latency_ns);
        if !ok {
            self.failures.inc();
        }
    }

    /// Records a request covered by another caller's flush cycle.
    #[progress(wait_free)]
    pub(crate) fn record_coalesced(&self) {
        self.coalesced.inc();
    }

    /// The persister's samples.
    #[progress(wait_free)]
    pub(crate) fn samples(&self) -> Vec<Sample> {
        vec![
            Sample {
                name: "store_persist_flushes_total",
                help: "Physical snapshot seal-and-write cycles.",
                labels: Vec::new(),
                value: SampleValue::Counter(self.flushes.get()),
            },
            Sample {
                name: "store_persist_flush_failures_total",
                help: "Flush cycles whose snapshot write failed.",
                labels: Vec::new(),
                value: SampleValue::Counter(self.failures.get()),
            },
            Sample {
                name: "store_persist_coalesced_total",
                help: "Durability requests satisfied by another caller's flush (group commit).",
                labels: Vec::new(),
                value: SampleValue::Counter(self.coalesced.get()),
            },
            Sample {
                name: "store_persist_flush_latency_ns",
                help: "Wall-clock latency of one seal-and-write cycle, in nanoseconds.",
                labels: Vec::new(),
                value: SampleValue::Histogram(self.flush_latency_ns.snapshot()),
            },
        ]
    }
}

/// Group-size bucket bounds (frames coalesced into one WAL flush cycle).
const WAL_GROUP_FRAMES_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// The [`Wal`](crate::wal::Wal)'s instruments. Same discipline as
/// [`PersistMetrics`]: recorded from the (blocking) append/flush paths,
/// kept in atomics **outside** the buffer mutex, so
/// [`Wal::scrape`](crate::wal::Wal::scrape) stays wait-free — a dashboard
/// never queues behind an in-flight fsync.
#[derive(Debug)]
pub(crate) struct WalMetrics {
    /// Frames enqueued, split by durability class.
    group_appends: Counter,
    sync_appends: Counter,
    /// Bytes of encoded frames enqueued.
    appended_bytes: Counter,
    /// Write-and-fsync cycles, and how many failed.
    flushes: Counter,
    failures: Counter,
    /// Frames coalesced into one flush cycle — the group-commit win.
    group_frames: FixedHistogram,
    /// Wall-clock latency of one write-and-fsync cycle.
    fsync_latency_ns: FixedHistogram,
    /// Segment rotations (size threshold or checkpoint seal).
    rotations: Counter,
    /// Segments deleted by checkpoint truncation.
    segments_deleted: Counter,
    /// `DurabilityClass::Sync` requests denied to the guest tier.
    sync_denied: Counter,
    /// Frames replayed from pre-existing segments at open (set once).
    replay_frames: Gauge,
    /// Torn tails cut off at open (expected crash damage).
    torn_tails: Counter,
}

impl WalMetrics {
    pub(crate) fn new() -> Self {
        WalMetrics {
            group_appends: Counter::new(),
            sync_appends: Counter::new(),
            appended_bytes: Counter::new(),
            flushes: Counter::new(),
            failures: Counter::new(),
            group_frames: FixedHistogram::new(&WAL_GROUP_FRAMES_BOUNDS),
            fsync_latency_ns: FixedHistogram::new(&FLUSH_LATENCY_NS_BOUNDS),
            rotations: Counter::new(),
            segments_deleted: Counter::new(),
            sync_denied: Counter::new(),
            replay_frames: Gauge::new(),
            torn_tails: Counter::new(),
        }
    }

    /// Records one enqueued frame.
    #[progress(wait_free)]
    pub(crate) fn record_append(&self, bytes: u64, class: crate::wal::DurabilityClass) {
        match class {
            crate::wal::DurabilityClass::Group => self.group_appends.inc(),
            crate::wal::DurabilityClass::Sync => self.sync_appends.inc(),
        }
        self.appended_bytes.add(bytes);
    }

    /// Records one write-and-fsync cycle: its latency, how many frames it
    /// coalesced, and its outcome.
    #[progress(wait_free)]
    pub(crate) fn record_flush(&self, latency_ns: u64, frames: u64, ok: bool) {
        self.flushes.inc();
        self.fsync_latency_ns.observe(latency_ns);
        self.group_frames.observe(frames);
        if !ok {
            self.failures.inc();
        }
    }

    /// Records one segment rotation.
    #[progress(wait_free)]
    pub(crate) fn record_rotation(&self) {
        self.rotations.inc();
    }

    /// Records a checkpoint truncation deleting `segments` segments.
    #[progress(wait_free)]
    pub(crate) fn record_truncation(&self, segments: u64) {
        self.segments_deleted.add(segments);
    }

    /// Records a guest-tier synchronous-durability request that was
    /// denied (asymmetric durability: sync is a VIP privilege).
    #[progress(wait_free)]
    pub(crate) fn record_sync_denied(&self) {
        self.sync_denied.inc();
    }

    /// Sets the open-time replay gauge (once).
    #[progress(wait_free)]
    pub(crate) fn set_replay_frames(&self, frames: u64) {
        self.replay_frames.set(frames);
    }

    /// Records a torn tail cut off at open.
    #[progress(wait_free)]
    pub(crate) fn record_torn_tail(&self) {
        self.torn_tails.inc();
    }

    /// The WAL's samples.
    #[progress(wait_free)]
    pub(crate) fn samples(&self) -> Vec<Sample> {
        let appends = [("group", self.group_appends.get()), ("sync", self.sync_appends.get())];
        let mut out = Vec::new();
        for (class, count) in appends {
            out.push(Sample {
                name: "store_wal_appends_total",
                help: "WAL frames enqueued, by durability class.",
                labels: vec![("class", String::from(class))],
                value: SampleValue::Counter(count),
            });
        }
        out.push(Sample {
            name: "store_wal_appended_bytes_total",
            help: "Bytes of encoded WAL frames enqueued.",
            labels: Vec::new(),
            value: SampleValue::Counter(self.appended_bytes.get()),
        });
        out.push(Sample {
            name: "store_wal_flushes_total",
            help: "WAL write-and-fsync cycles.",
            labels: Vec::new(),
            value: SampleValue::Counter(self.flushes.get()),
        });
        out.push(Sample {
            name: "store_wal_flush_failures_total",
            help: "WAL flush cycles that failed.",
            labels: Vec::new(),
            value: SampleValue::Counter(self.failures.get()),
        });
        out.push(Sample {
            name: "store_wal_group_frames",
            help: "Frames coalesced into one WAL flush cycle (group-commit size).",
            labels: Vec::new(),
            value: SampleValue::Histogram(self.group_frames.snapshot()),
        });
        out.push(Sample {
            name: "store_wal_fsync_latency_ns",
            help: "Wall-clock latency of one WAL write-and-fsync cycle, in nanoseconds.",
            labels: Vec::new(),
            value: SampleValue::Histogram(self.fsync_latency_ns.snapshot()),
        });
        out.push(Sample {
            name: "store_wal_rotations_total",
            help: "WAL segment rotations (size threshold or checkpoint seal).",
            labels: Vec::new(),
            value: SampleValue::Counter(self.rotations.get()),
        });
        out.push(Sample {
            name: "store_wal_segments_deleted_total",
            help: "WAL segments deleted by checkpoint truncation.",
            labels: Vec::new(),
            value: SampleValue::Counter(self.segments_deleted.get()),
        });
        out.push(Sample {
            name: "store_wal_sync_denied_total",
            help: "Guest-tier synchronous-durability requests denied (VIP privilege).",
            labels: Vec::new(),
            value: SampleValue::Counter(self.sync_denied.get()),
        });
        out.push(Sample {
            name: "store_wal_replay_frames",
            help: "Frames replayed from pre-existing segments at WAL open.",
            labels: Vec::new(),
            value: SampleValue::Gauge(self.replay_frames.get()),
        });
        out.push(Sample {
            name: "store_wal_torn_tails_total",
            help: "Torn tails cut off at WAL open (expected crash damage).",
            labels: Vec::new(),
            value: SampleValue::Counter(self.torn_tails.get()),
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use apc_obs::MetricsSnapshot;

    use super::*;

    fn snap(m: &StoreMetrics) -> MetricsSnapshot {
        MetricsSnapshot { samples: m.samples() }
    }

    #[test]
    fn tiers_are_separate_series() {
        let m = StoreMetrics::new();
        m.record_commit(ProgressClass::Vip, 4, 1_500, 0);
        m.record_commit(ProgressClass::Vip, 2, 900, 1);
        m.record_commit(ProgressClass::Guest, 8, 70_000, 0);
        let s = snap(&m);
        assert_eq!(s.value("store_commits_total", &[("tier", "vip")]), Some(2));
        assert_eq!(s.value("store_commits_total", &[("tier", "guest")]), Some(1));
        assert_eq!(s.value("store_moved_ops_total", &[("tier", "vip")]), Some(1));
        assert_eq!(s.value("store_moved_ops_total", &[("tier", "guest")]), Some(0));
        let vip_lat = s.histogram("store_commit_latency_ns", &[("tier", "vip")]).unwrap();
        assert_eq!(vip_lat.count, 2);
        let guest_ops = s.histogram("store_commit_ops", &[("tier", "guest")]).unwrap();
        assert_eq!(guest_ops.sum, 8);
    }

    #[test]
    fn reconfig_and_elastic_events_accumulate() {
        let m = StoreMetrics::new();
        m.record_split(3);
        m.record_merge(4);
        m.record_adopt();
        m.record_elastic(ElasticDecision::Split(0), true);
        m.record_elastic(ElasticDecision::Split(0), false);
        m.record_elastic(ElasticDecision::Merge(1), true);
        m.record_elastic(ElasticDecision::Hold, false);
        m.record_auto_checkpoint();
        m.set_recovery_replay_steps(17);
        let s = snap(&m);
        assert_eq!(s.value("store_reconfigs_total", &[("kind", "split")]), Some(1));
        assert_eq!(s.value("store_reconfigs_total", &[("kind", "merge")]), Some(1));
        assert_eq!(s.value("store_reconfigs_total", &[("kind", "adopt")]), Some(1));
        assert_eq!(s.value("store_reconfig_last_version", &[]), Some(4));
        assert_eq!(s.value("store_elastic_decisions_total", &[("decision", "split")]), Some(2));
        assert_eq!(s.value("store_elastic_applied_total", &[("decision", "split")]), Some(1));
        assert_eq!(s.value("store_elastic_decisions_total", &[("decision", "hold")]), Some(1));
        assert_eq!(s.value("store_auto_checkpoints_total", &[]), Some(1));
        assert_eq!(s.value("store_recovery_replay_steps", &[]), Some(17));
    }

    #[test]
    fn persist_metrics_track_cycles_and_coalescing() {
        let m = PersistMetrics::new();
        m.record_flush(2_000_000, true);
        m.record_flush(300_000_000, false);
        m.record_coalesced();
        m.record_coalesced();
        let s = MetricsSnapshot { samples: m.samples() };
        assert_eq!(s.value("store_persist_flushes_total", &[]), Some(2));
        assert_eq!(s.value("store_persist_flush_failures_total", &[]), Some(1));
        assert_eq!(s.value("store_persist_coalesced_total", &[]), Some(2));
        let lat = s.histogram("store_persist_flush_latency_ns", &[]).unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 302_000_000);
    }

    #[test]
    fn wal_metrics_track_appends_flushes_and_lifecycle() {
        let m = WalMetrics::new();
        m.record_append(64, crate::wal::DurabilityClass::Group);
        m.record_append(32, crate::wal::DurabilityClass::Group);
        m.record_append(48, crate::wal::DurabilityClass::Sync);
        m.record_flush(2_000_000, 3, true);
        m.record_flush(500_000_000, 1, false);
        m.record_rotation();
        m.record_truncation(4);
        m.record_sync_denied();
        m.set_replay_frames(7);
        m.record_torn_tail();
        let s = MetricsSnapshot { samples: m.samples() };
        assert_eq!(s.value("store_wal_appends_total", &[("class", "group")]), Some(2));
        assert_eq!(s.value("store_wal_appends_total", &[("class", "sync")]), Some(1));
        assert_eq!(s.value("store_wal_appended_bytes_total", &[]), Some(144));
        assert_eq!(s.value("store_wal_flushes_total", &[]), Some(2));
        assert_eq!(s.value("store_wal_flush_failures_total", &[]), Some(1));
        let group = s.histogram("store_wal_group_frames", &[]).unwrap();
        assert_eq!(group.count, 2);
        assert_eq!(group.sum, 4);
        let lat = s.histogram("store_wal_fsync_latency_ns", &[]).unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(s.value("store_wal_rotations_total", &[]), Some(1));
        assert_eq!(s.value("store_wal_segments_deleted_total", &[]), Some(4));
        assert_eq!(s.value("store_wal_sync_denied_total", &[]), Some(1));
        assert_eq!(s.value("store_wal_replay_frames", &[]), Some(7));
        assert_eq!(s.value("store_wal_torn_tails_total", &[]), Some(1));
    }

    #[test]
    fn elapsed_ns_is_monotone_and_total() {
        let t0 = std::time::Instant::now();
        let a = elapsed_ns(t0);
        let b = elapsed_ns(t0);
        assert!(b >= a);
    }
}
