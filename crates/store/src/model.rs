//! The shard commit path as an `apc-model` program, exhaustively checkable.
//!
//! The real commit path (see [`crate::store`]) is: a port proposes its batch
//! into the next free log cell's `(y,x)`-live consensus, applies the decided
//! batch, and publishes its commit digest. This module models exactly that
//! kernel with one atomic event per shared-memory access:
//!
//! * the **log cell** is a `(y,x)`-live consensus base object (the
//!   simulated object with *exactly* the paper's liveness: one-event
//!   completion for the wait-free set, isolation-window completion for
//!   guests);
//! * the **digest publication** is a register write;
//! * a committer *decides* the value its cell agreed on.
//!
//! Small instances verify the two claims the service layer makes
//! (Theorem 3 flavor):
//!
//! 1. **safety** — every schedule agrees on one committed batch per cell,
//!    and the committed batch was proposed (linearizability of the commit
//!    point);
//! 2. **asymmetric liveness** — every fair schedule in which a VIP
//!    participates terminates, while guest-only schedules admit a fair
//!    livelock (lockstep guests starve each other forever), which the model
//!    checker exhibits as a positive witness.

use apc_model::{
    MaybeParticipant, ObjectId, Op, ProcessSet, Program, ProgramAction, System, SystemBuilder,
    Value,
};

/// Object ids of one modeled shard commit instance.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CommitObjects {
    /// The next free log cell: a `(y,x)`-live consensus base object.
    pub cell: ObjectId,
    /// The digest register the winning committer publishes into.
    pub committed: ObjectId,
}

impl CommitObjects {
    /// Adds the shard-commit objects for `ports` ports with wait-free set
    /// `vips` and the given guest isolation window.
    pub fn add_to(
        builder: &mut SystemBuilder,
        ports: ProcessSet,
        vips: ProcessSet,
        isolation_window: u8,
    ) -> Self {
        let cell = builder.add_live_consensus(ports, vips, isolation_window);
        let committed = builder.add_register(Value::Bot);
        CommitObjects { cell, committed }
    }
}

/// One port committing one batch: propose to the cell, publish the decided
/// batch id, decide it.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ShardCommitProgram {
    objs: CommitObjects,
    batch_id: u32,
    decided: Value,
    state: CommitState,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum CommitState {
    /// Next: propose my batch to the cell (retries while the cell keeps the
    /// guest pending — each retry is one atomic event).
    Start,
    /// Awaiting the cell's decision; next: publish it.
    GotDecision,
    /// Awaiting the publish acknowledgement; next: decide.
    Published,
}

impl ShardCommitProgram {
    /// A committer proposing batch `batch_id`.
    pub fn new(objs: CommitObjects, batch_id: u32) -> Self {
        ShardCommitProgram { objs, batch_id, decided: Value::Bot, state: CommitState::Start }
    }
}

impl Program for ShardCommitProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self.state {
            CommitState::Start => {
                self.state = CommitState::GotDecision;
                ProgramAction::Invoke(Op::Propose(self.objs.cell, Value::Num(self.batch_id)))
            }
            CommitState::GotDecision => {
                self.decided = last.expect("propose completes with the decided batch");
                self.state = CommitState::Published;
                ProgramAction::Invoke(Op::Write(self.objs.committed, self.decided))
            }
            CommitState::Published => ProgramAction::Decide(self.decided),
        }
    }

    fn name(&self) -> &'static str {
        "shard-commit"
    }
}

/// Builds the modeled commit path for `ports` total ports of which the
/// first `vips` are wait-free, with participation restricted to
/// `participants` (absent ports never take a step).
///
/// Each participant `i` proposes batch id `100 + i`.
///
/// # Panics
///
/// Panics if `ports == 0` or `vips > ports`.
pub fn shard_commit_system(
    ports: usize,
    vips: usize,
    isolation_window: u8,
    participants: ProcessSet,
) -> (System<MaybeParticipant<ShardCommitProgram>>, CommitObjects) {
    assert!(ports > 0 && vips <= ports, "need 0 < ports and vips ≤ ports");
    let mut builder = SystemBuilder::new(ports);
    let objs = CommitObjects::add_to(
        &mut builder,
        ProcessSet::first_n(ports),
        ProcessSet::first_n(vips),
        isolation_window,
    );
    let system = builder.build(|pid| {
        if participants.contains(pid) {
            MaybeParticipant::Present(ShardCommitProgram::new(objs, 100 + pid.index() as u32))
        } else {
            MaybeParticipant::Absent
        }
    });
    (system, objs)
}

/// The proposal values of `participants` (for validity invariants).
pub fn proposed_batches(participants: ProcessSet) -> Vec<Value> {
    participants.iter().map(|p| Value::Num(100 + p.index() as u32)).collect()
}

// ---------------------------------------------------------------------------
// Checkpoint install racing concurrent commits: the multi-cell log model.
// ---------------------------------------------------------------------------

/// Batch ids are `100 + pid`; checkpoint markers are `CHECKPOINT_BASE + pid`.
pub const CHECKPOINT_BASE: u32 = 900;

/// Topology-bump (split) markers are `SPLIT_BASE + pid` — namespaced away
/// from both batch ids and checkpoint markers, like the real
/// [`ShardCmd::Split`](crate::ops::ShardCmd) is a distinct log-record
/// payload.
pub const SPLIT_BASE: u32 = 800;

/// Merge-retirement markers (the child-side drain of a live merge) are
/// `MERGE_BASE + pid` — the model of
/// [`ShardCmd::Merge`](crate::ops::ShardCmd) placing in the child's log.
pub const MERGE_BASE: u32 = 700;

/// Merge-adoption markers (the parent-side fold-in of a live merge) are
/// `ADOPT_BASE + pid` — the model of
/// [`ShardCmd::Adopt`](crate::ops::ShardCmd) placing in the parent's log.
pub const ADOPT_BASE: u32 = 600;

/// One port placing one value (a batch or a checkpoint) into a multi-cell
/// log, exactly like the real universal construction walks its cells:
/// propose to the next free cell; if the cell agreed on someone else's
/// value, move on and re-propose; stop at the cell that agreed on mine.
///
/// With as many cells as participants, every participant places within the
/// window (each process wins at most one cell, so a process can lose at
/// most `participants − 1` times) — the model-checkable core of the claim
/// that a checkpoint install never drops or duplicates a committed op.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LogPlaceProgram {
    cells: Vec<ObjectId>,
    value: Value,
    next_cell: usize,
    started: bool,
}

impl LogPlaceProgram {
    /// A port trying to place `value` into the log `cells`, in order.
    pub fn new(cells: Vec<ObjectId>, value: Value) -> Self {
        LogPlaceProgram { cells, value, next_cell: 0, started: false }
    }
}

impl Program for LogPlaceProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        if self.started {
            let decided = last.expect("propose completes with the decided value");
            if decided == self.value {
                return ProgramAction::Decide(self.value);
            }
            self.next_cell += 1;
        }
        self.started = true;
        match self.cells.get(self.next_cell) {
            Some(cell) => ProgramAction::Invoke(Op::Propose(*cell, self.value)),
            // Unreachable when cells ≥ participants (pigeonhole); reported
            // as a dropped placement by [`PlacementSafety`] if it happens.
            None => ProgramAction::Halt,
        }
    }

    fn name(&self) -> &'static str {
        "log-place"
    }
}

/// The safety invariant of the checkpointed commit path, checked at every
/// reachable state:
///
/// 1. **no duplicate placement** — no value is agreed by two different log
///    cells (a committed batch or checkpoint is never replayed twice);
/// 2. **cell validity** — every cell decision is some participant's
///    proposal;
/// 3. **placement before decision** — a port only decides a value some
///    cell actually agreed on;
/// 4. **no dropped commit** — in a terminal state, every participant has
///    decided (its value was placed inside the log window).
#[derive(Clone, Debug)]
pub struct PlacementSafety {
    /// The log cells, in order.
    pub cells: Vec<ObjectId>,
    /// The participating ports.
    pub participants: ProcessSet,
    /// Every participant's proposal value.
    pub proposals: Vec<Value>,
}

impl<P: apc_model::Program> apc_model::explore::Invariant<P> for PlacementSafety {
    fn check(&self, sys: &System<P>) -> Result<(), String> {
        let placed: Vec<Value> =
            self.cells.iter().filter_map(|c| sys.object(*c).consensus_decision()).collect();
        for (i, v) in placed.iter().enumerate() {
            if placed[..i].contains(v) {
                return Err(format!("value {v} was agreed by two log cells"));
            }
            if !self.proposals.contains(v) {
                return Err(format!("cell agreed on unproposed value {v}"));
            }
        }
        for (pid, v) in sys.decisions() {
            if !placed.contains(&v) {
                return Err(format!("{pid} decided {v} but no cell agreed on it"));
            }
        }
        if sys.all_terminated() {
            for pid in self.participants.iter() {
                if sys.decision(pid).is_none() {
                    return Err(format!("terminal state dropped {pid}'s placement"));
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "placement-safety"
    }
}

/// Builds the checkpointed commit path: `committers` race their batches
/// (`100 + pid`) against `checkpointer`'s checkpoint install
/// (`CHECKPOINT_BASE + pid`) over a log window of one `(ports,vips)`-live
/// cell per participant.
///
/// Returns the system, the log cells, and the participants' proposal set.
///
/// # Panics
///
/// Panics if `ports == 0`, `vips > ports`, or the checkpointer is also a
/// committer.
pub fn checkpointed_commit_system(
    ports: usize,
    vips: usize,
    isolation_window: u8,
    committers: ProcessSet,
    checkpointer: Option<usize>,
) -> (System<MaybeParticipant<LogPlaceProgram>>, Vec<ObjectId>, Vec<Value>) {
    special_commit_system(ports, vips, isolation_window, committers, checkpointer, CHECKPOINT_BASE)
}

/// Builds the **split-vs-commit race**: `committers` race their batches
/// (`100 + pid`) against `splitter`'s topology-bump install
/// (`SPLIT_BASE + pid`) over a log window of one `(ports,vips)`-live cell
/// per participant — the model of [`Store::split_shard`]'s reconfig record
/// racing concurrent VIP/guest batches through the shard's own log.
///
/// [`PlacementSafety`] over the result is exactly the split-safety claim:
/// the bump and every batch place **exactly once** (no committed op is
/// dropped by the migration or replayed into both sides of the split), and
/// terminal states place every participant.
///
/// Returns the system, the log cells, and the participants' proposal set.
///
/// # Panics
///
/// Panics if `ports == 0`, `vips > ports`, or the splitter is also a
/// committer.
///
/// [`Store::split_shard`]: crate::store::Store::split_shard
pub fn split_commit_system(
    ports: usize,
    vips: usize,
    isolation_window: u8,
    committers: ProcessSet,
    splitter: Option<usize>,
) -> (System<MaybeParticipant<LogPlaceProgram>>, Vec<ObjectId>, Vec<Value>) {
    special_commit_system(ports, vips, isolation_window, committers, splitter, SPLIT_BASE)
}

/// Builds the **single-log merge-vs-commit race**: `committers` race their
/// batches (`100 + pid`) against `merger`'s retirement install
/// (`MERGE_BASE + pid`) over a log window of one `(ports,vips)`-live cell
/// per participant — the model of [`Store::merge_shard`]'s child-side
/// drain racing concurrent VIP/guest batches through the retiring shard's
/// own log. (The cross-log half — the drain *then* the adoption — is
/// [`merge_adopt_system`].)
///
/// [`PlacementSafety`] over the result is the child-side merge-safety
/// claim: the retirement and every batch place **exactly once** (no
/// committed op is dropped by the drain or replayed after it), and
/// terminal states place every participant.
///
/// # Panics
///
/// Panics if `ports == 0`, `vips > ports`, or the merger is also a
/// committer.
///
/// [`Store::merge_shard`]: crate::store::Store::merge_shard
pub fn merge_commit_system(
    ports: usize,
    vips: usize,
    isolation_window: u8,
    committers: ProcessSet,
    merger: Option<usize>,
) -> (System<MaybeParticipant<LogPlaceProgram>>, Vec<ObjectId>, Vec<Value>) {
    special_commit_system(ports, vips, isolation_window, committers, merger, MERGE_BASE)
}

/// One port placing a value in **each of two logs, in order**: the merge
/// driver's shape. Stage 0 walks the first log's cells until its drain
/// marker is agreed (the child-side retirement); only then does stage 1
/// begin walking the second log for the adoption marker (the parent-side
/// fold-in). Decides the adoption value once both are placed — the model
/// of [`Store::merge_shard`]'s two sequential `reconfigure` calls.
///
/// [`Store::merge_shard`]: crate::store::Store::merge_shard
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DualLogPlaceProgram {
    stages: [(Vec<ObjectId>, Value); 2],
    stage: usize,
    next_cell: usize,
    started: bool,
}

impl DualLogPlaceProgram {
    /// A driver placing `first_value` into `first_cells`, then
    /// `second_value` into `second_cells`.
    pub fn new(
        first_cells: Vec<ObjectId>,
        first_value: Value,
        second_cells: Vec<ObjectId>,
        second_value: Value,
    ) -> Self {
        DualLogPlaceProgram {
            stages: [(first_cells, first_value), (second_cells, second_value)],
            stage: 0,
            next_cell: 0,
            started: false,
        }
    }
}

impl Program for DualLogPlaceProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        if self.started {
            let decided = last.expect("propose completes with the decided value");
            let (_, value) = &self.stages[self.stage];
            if decided == *value {
                if self.stage == 1 {
                    return ProgramAction::Decide(*value);
                }
                // The drain is placed; move to the adoption log.
                self.stage = 1;
                self.next_cell = 0;
            } else {
                self.next_cell += 1;
            }
        }
        self.started = true;
        let (cells, value) = &self.stages[self.stage];
        match cells.get(self.next_cell) {
            Some(cell) => ProgramAction::Invoke(Op::Propose(*cell, *value)),
            // Unreachable when each log has one cell per port placing in
            // it (pigeonhole); reported by [`PlacementSafety`] if not.
            None => ProgramAction::Halt,
        }
    }

    fn name(&self) -> &'static str {
        "dual-log-place"
    }
}

/// The program of one port in the cross-log merge model: a committer
/// placing a batch in one log, or the merge driver crossing both.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MergePlaceProgram {
    /// A client batch placing into a single log.
    Commit(LogPlaceProgram),
    /// The merge driver: drain the child log, then adopt into the parent.
    Merge(DualLogPlaceProgram),
}

impl Program for MergePlaceProgram {
    fn resume(&mut self, last: Option<Value>) -> ProgramAction {
        match self {
            MergePlaceProgram::Commit(p) => p.resume(last),
            MergePlaceProgram::Merge(p) => p.resume(last),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            MergePlaceProgram::Commit(p) => p.name(),
            MergePlaceProgram::Merge(p) => p.name(),
        }
    }
}

/// The cross-log ordering invariant of a live merge: the adoption marker
/// may appear in the parent's log **only after** the drain marker is
/// agreed in the child's log. (The real driver proposes the adoption only
/// once the retirement cell decided; a schedule where the adoption showed
/// up first would mean adopted keys nobody drained.)
#[derive(Clone, Debug)]
pub struct MergeOrder {
    /// The child (drain) log's cells.
    pub child_cells: Vec<ObjectId>,
    /// The parent (adopt) log's cells.
    pub parent_cells: Vec<ObjectId>,
    /// The drain marker value.
    pub drain: Value,
    /// The adoption marker value.
    pub adopt: Value,
}

impl<P: apc_model::Program> apc_model::explore::Invariant<P> for MergeOrder {
    fn check(&self, sys: &System<P>) -> Result<(), String> {
        let placed = |cells: &[ObjectId], v: &Value| {
            cells.iter().any(|c| sys.object(*c).consensus_decision().as_ref() == Some(v))
        };
        if placed(&self.parent_cells, &self.adopt) && !placed(&self.child_cells, &self.drain) {
            return Err(format!(
                "adoption {} was agreed before drain {} — adopted keys nobody drained",
                self.adopt, self.drain
            ));
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "merge-order"
    }
}

/// Builds the **cross-log merge race**: `child_committers` race batches in
/// the child's log and `parent_committers` race batches in the parent's
/// log while `merger` drains the child (`MERGE_BASE + pid`) and then
/// adopts into the parent (`ADOPT_BASE + pid`) — the dual-log shape of
/// [`Store::merge_shard`]. Each log has one `(ports,vips)`-live cell per
/// port placing into it.
///
/// Returns the system, the child cells, the parent cells, and the full
/// proposal set. Check [`PlacementSafety`] over the **union** of the cells
/// (no value places twice anywhere — in particular, nothing commits into
/// both sides of the merge) and [`MergeOrder`] for the cross-log ordering.
///
/// # Panics
///
/// Panics if `ports == 0`, `vips > ports`, the committer sets overlap, or
/// the merger is also a committer.
///
/// [`Store::merge_shard`]: crate::store::Store::merge_shard
#[allow(clippy::type_complexity)]
pub fn merge_adopt_system(
    ports: usize,
    vips: usize,
    isolation_window: u8,
    child_committers: ProcessSet,
    parent_committers: ProcessSet,
    merger: usize,
) -> (System<MaybeParticipant<MergePlaceProgram>>, Vec<ObjectId>, Vec<ObjectId>, Vec<Value>) {
    assert!(ports > 0 && vips <= ports, "need 0 < ports and vips ≤ ports");
    assert!(
        !child_committers.iter().any(|p| parent_committers.contains(p)),
        "a committer places in exactly one log"
    );
    assert!(
        !child_committers.iter().chain(parent_committers.iter()).any(|p| p.index() == merger),
        "the merger does not also commit a batch"
    );
    let mut builder = SystemBuilder::new(ports);
    let child_cells: Vec<ObjectId> = (0..child_committers.iter().count() + 1)
        .map(|_| {
            builder.add_live_consensus(
                ProcessSet::first_n(ports),
                ProcessSet::first_n(vips),
                isolation_window,
            )
        })
        .collect();
    let parent_cells: Vec<ObjectId> = (0..parent_committers.iter().count() + 1)
        .map(|_| {
            builder.add_live_consensus(
                ProcessSet::first_n(ports),
                ProcessSet::first_n(vips),
                isolation_window,
            )
        })
        .collect();
    let mut proposals: Vec<Value> = child_committers
        .iter()
        .chain(parent_committers.iter())
        .map(|p| Value::Num(100 + p.index() as u32))
        .collect();
    proposals.push(Value::Num(MERGE_BASE + merger as u32));
    proposals.push(Value::Num(ADOPT_BASE + merger as u32));
    let system = builder.build(|pid| {
        let batch = Value::Num(100 + pid.index() as u32);
        if child_committers.contains(pid) {
            MaybeParticipant::Present(MergePlaceProgram::Commit(LogPlaceProgram::new(
                child_cells.clone(),
                batch,
            )))
        } else if parent_committers.contains(pid) {
            MaybeParticipant::Present(MergePlaceProgram::Commit(LogPlaceProgram::new(
                parent_cells.clone(),
                batch,
            )))
        } else if pid.index() == merger {
            MaybeParticipant::Present(MergePlaceProgram::Merge(DualLogPlaceProgram::new(
                child_cells.clone(),
                Value::Num(MERGE_BASE + merger as u32),
                parent_cells.clone(),
                Value::Num(ADOPT_BASE + merger as u32),
            )))
        } else {
            MaybeParticipant::Absent
        }
    });
    (system, child_cells, parent_cells, proposals)
}

/// Shared body of [`checkpointed_commit_system`] and
/// [`split_commit_system`]: one distinguished port placing a marker value
/// (`marker_base + pid`) against the committers' batches.
fn special_commit_system(
    ports: usize,
    vips: usize,
    isolation_window: u8,
    committers: ProcessSet,
    special: Option<usize>,
    marker_base: u32,
) -> (System<MaybeParticipant<LogPlaceProgram>>, Vec<ObjectId>, Vec<Value>) {
    assert!(ports > 0 && vips <= ports, "need 0 < ports and vips ≤ ports");
    if let Some(sp) = special {
        assert!(
            !committers.iter().any(|p| p.index() == sp),
            "the marker port must not also commit a batch"
        );
    }
    let checkpointer = special;
    let participants: ProcessSet = committers
        .iter()
        .map(|p| p.index())
        .chain(checkpointer)
        .collect::<Vec<usize>>()
        .into_iter()
        .collect();
    let mut builder = SystemBuilder::new(ports);
    let cells: Vec<ObjectId> = (0..participants.iter().count())
        .map(|_| {
            builder.add_live_consensus(
                ProcessSet::first_n(ports),
                ProcessSet::first_n(vips),
                isolation_window,
            )
        })
        .collect();
    let value_of = |pid: usize| {
        if checkpointer == Some(pid) {
            Value::Num(marker_base + pid as u32)
        } else {
            Value::Num(100 + pid as u32)
        }
    };
    let proposals: Vec<Value> = participants.iter().map(|p| value_of(p.index())).collect();
    let system = builder.build(|pid| {
        if participants.contains(pid) {
            MaybeParticipant::Present(LogPlaceProgram::new(cells.clone(), value_of(pid.index())))
        } else {
            MaybeParticipant::Absent
        }
    });
    (system, cells, proposals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_model::explore::{Agreement, ExploreConfig, Explorer, NoFaults, ValidityIn};
    use apc_model::fairness::{fair_livelocks, fair_termination, StateGraph};
    use apc_model::{ProcessId, Runner, Schedule};

    #[test]
    fn solo_vip_commits_immediately() {
        let (sys, objs) = shard_commit_system(3, 1, 1, ProcessSet::from_indices([0]));
        let mut runner = Runner::new(sys);
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(0), 1), 100);
        assert_eq!(runner.system().decision(ProcessId::new(0)), Some(Value::Num(100)));
        assert_eq!(runner.system().object(objs.cell).consensus_decision(), Some(Value::Num(100)));
    }

    #[test]
    fn solo_guest_commits_given_isolation() {
        // Obstruction-freedom: a guest running alone terminates.
        let (sys, _) = shard_commit_system(3, 1, 2, ProcessSet::from_indices([2]));
        let mut runner = Runner::new(sys);
        // Absent processes are never scheduled; only the guest's own
        // termination matters.
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(2), 1), 100);
        assert_eq!(
            runner.system().decision(ProcessId::new(2)),
            Some(Value::Num(102)),
            "a solo guest must commit"
        );
    }

    #[test]
    fn exhaustive_safety_small_shard() {
        let participants = ProcessSet::first_n(3);
        let (sys, _) = shard_commit_system(3, 1, 1, participants);
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(200_000));
        let result = explorer.explore(
            &sys,
            &[&Agreement, &ValidityIn::new(proposed_batches(participants)), &NoFaults],
        );
        assert!(result.ok(), "violations: {:?}", result.violations.first());
        assert!(!result.truncated);
    }

    #[test]
    fn vip_participation_guarantees_termination() {
        // Any participation pattern containing the VIP (port 0) terminates
        // under every fair schedule.
        for mask in [0b001u8, 0b011, 0b101, 0b111] {
            let participants: ProcessSet = (0..3)
                .filter(|i| mask & (1 << i) != 0)
                .collect::<Vec<usize>>()
                .into_iter()
                .collect();
            let (sys, _) = shard_commit_system(3, 1, 1, participants);
            let graph = StateGraph::build(&sys, 200_000);
            assert!(!graph.truncated());
            let verdict = fair_termination(&graph, |pid| participants.contains(pid));
            assert!(verdict.holds(), "mask {mask:03b}: {verdict:?}");
        }
    }

    #[test]
    fn solo_checkpointer_installs_its_checkpoint() {
        let (sys, cells, _) = checkpointed_commit_system(3, 1, 1, ProcessSet::EMPTY, Some(0));
        let mut runner = Runner::new(sys);
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(0), 1), 100);
        assert_eq!(runner.system().decision(ProcessId::new(0)), Some(Value::Num(CHECKPOINT_BASE)),);
        assert_eq!(
            runner.system().object(cells[0]).consensus_decision(),
            Some(Value::Num(CHECKPOINT_BASE)),
            "the checkpoint occupies the first free cell"
        );
    }

    #[test]
    fn solo_splitter_installs_its_bump() {
        let (sys, cells, _) = split_commit_system(3, 1, 1, ProcessSet::EMPTY, Some(2));
        let mut runner = Runner::new(sys);
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(2), 1), 100);
        assert_eq!(runner.system().decision(ProcessId::new(2)), Some(Value::Num(SPLIT_BASE + 2)),);
        assert_eq!(
            runner.system().object(cells[0]).consensus_decision(),
            Some(Value::Num(SPLIT_BASE + 2)),
            "the bump occupies the first free cell"
        );
    }

    #[test]
    fn checkpoint_race_small_exhaustive() {
        // VIP commit + guest commit + guest checkpoint, every schedule.
        let committers = ProcessSet::from_indices([0, 1]);
        let (sys, cells, proposals) = checkpointed_commit_system(3, 1, 1, committers, Some(2));
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(400_000));
        let safety =
            PlacementSafety { cells, participants: ProcessSet::from_indices([0, 1, 2]), proposals };
        let result = explorer.explore(&sys, &[&safety, &NoFaults]);
        assert!(result.ok(), "violations: {:?}", result.violations.first());
        assert!(!result.truncated);
    }

    #[test]
    fn solo_merger_installs_drain_then_adopt() {
        let (sys, child_cells, parent_cells, _) =
            merge_adopt_system(3, 1, 1, ProcessSet::EMPTY, ProcessSet::EMPTY, 2);
        let mut runner = Runner::new(sys);
        runner.run_until_terminated(&Schedule::solo(ProcessId::new(2), 1), 200);
        assert_eq!(
            runner.system().decision(ProcessId::new(2)),
            Some(Value::Num(ADOPT_BASE + 2)),
            "the merger decides once the adoption is placed"
        );
        assert_eq!(
            runner.system().object(child_cells[0]).consensus_decision(),
            Some(Value::Num(MERGE_BASE + 2)),
            "the drain occupies the child log's first free cell"
        );
        assert_eq!(
            runner.system().object(parent_cells[0]).consensus_decision(),
            Some(Value::Num(ADOPT_BASE + 2)),
            "the adoption occupies the parent log's first free cell"
        );
    }

    #[test]
    fn merge_adopt_small_exhaustive_with_order() {
        // One committer per log racing the dual-log merger: placement
        // safety over the union of the cells plus the cross-log ordering,
        // on every schedule.
        let child_committers = ProcessSet::from_indices([0]);
        let parent_committers = ProcessSet::from_indices([1]);
        let (sys, child_cells, parent_cells, proposals) =
            merge_adopt_system(3, 1, 1, child_committers, parent_committers, 2);
        let all_cells: Vec<ObjectId> =
            child_cells.iter().chain(parent_cells.iter()).copied().collect();
        let safety = PlacementSafety {
            cells: all_cells,
            participants: ProcessSet::from_indices([0, 1, 2]),
            proposals,
        };
        let order = MergeOrder {
            child_cells,
            parent_cells,
            drain: Value::Num(MERGE_BASE + 2),
            adopt: Value::Num(ADOPT_BASE + 2),
        };
        let explorer = Explorer::new(ExploreConfig::default().with_max_states(2_000_000));
        let result = explorer.explore(&sys, &[&safety, &order, &NoFaults]);
        assert!(result.ok(), "violations: {:?}", result.violations.first());
        assert!(!result.truncated);
    }

    #[test]
    fn guest_only_schedules_can_livelock() {
        // The asymmetric caveat: without the VIP, lockstep guests starve
        // each other forever — a fair livelock the checker exhibits.
        let participants = ProcessSet::from_indices([1, 2]);
        let (sys, _) = shard_commit_system(3, 1, 1, participants);
        let graph = StateGraph::build(&sys, 200_000);
        assert!(!graph.truncated());
        let witnesses = fair_livelocks(&graph);
        assert!(!witnesses.is_empty(), "lockstep guests must admit a livelock witness");
        let verdict = fair_termination(&graph, |pid| participants.contains(pid));
        assert!(!verdict.holds(), "guest-only termination must NOT be guaranteed");
    }
}
