//! Op-granular write-ahead log: the durability layer between checkpoints.
//!
//! The [`persist`](crate::persist) layer's guarantee is *prefix consistency
//! as of the last snapshot flush* — every commit since the last checkpoint
//! dies with the process. This module closes that window with an
//! append-only, segmented WAL that logs the **resolved effects** of every
//! mutating batch between checkpoints, and — the paper's thesis extended
//! to durability — makes durability an **asymmetric progress class of its
//! own**:
//!
//! * **guest / default** ([`DurabilityClass::Group`]): a commit enqueues
//!   its frame into the coalescing buffer and returns; a background
//!   flusher (or the next [`Wal::sync`] leader) writes and fsyncs many
//!   frames per cycle — the group-commit win. A crash may lose the frames
//!   buffered since the last cycle, and recovery restores a *consistent
//!   per-shard prefix* of what was logged;
//! * **VIP opt-in** ([`DurabilityClass::Sync`], via
//!   [`Client::execute_durable`](crate::store::Client::execute_durable)):
//!   the commit returns only after its frame — and everything enqueued
//!   before it — is fsync'd. Acknowledged sync commits survive a kill at
//!   any point. Only the VIP tier may opt in: hard guarantees are bounded,
//!   exactly as the admission layer bounds the wait-free tier.
//!
//! ## Why effects, not operations
//!
//! A frame records what a batch **did** (`key → Some(value)` /
//! `key → None`), with compare-and-set resolved at its linearization
//! point. Effects are absolute, so replay is idempotent (last writer wins
//! per key) and re-applying an effect already captured by a snapshot is
//! harmless. Each frame is stamped with the committing shard's
//! `(epoch, shard, cell)` — the cell index comes from the committing
//! port's own replay cursor, which is exact at commit time — so recovery
//! can sort frames into per-shard linearization order even when two ports
//! of one shard raced to the buffer in the wrong order. Effects are
//! re-applied **by key** through fresh routing, which makes replay
//! indifferent to splits and merges that happened after the snapshot.
//!
//! ## On-disk format (version 1, little-endian)
//!
//! ```text
//! segment file "wal-{seq:016x}.apcw":
//!   header: "APCW" | version u32 | segment_seq u64          (16 bytes)
//!   frame ×N:
//!     payload_len u32
//!     payload: epoch u64 | shard u32 | cell u64 | class u8 |
//!              effect_count u32 |
//!              effect ×count: tag u8 (0 = set, 1 = delete) |
//!                             key_len u32 | key bytes |
//!                             value u64 (tag 0 only)
//!     crc u64                       (FNV-1a of the payload)
//! ```
//!
//! Segments rotate at [`WalConfig::segment_bytes`] and are truncated at
//! each checkpoint seal: [`Persister`](crate::persist::Persister) rotates
//! to a fresh segment *before* sealing, writes the snapshot, and deletes
//! every segment older than the rotation point — safe because any frame
//! in an older segment logs a cell below its shard's seal index, so its
//! effect is inside the snapshot (and re-applying it would be a no-op
//! anyway).
//!
//! ## Failure policy
//!
//! Decoding fails closed with typed [`PersistError`]s. A **torn tail** —
//! the unique suffix a crash can tear, with no valid frame anywhere after
//! it — is expected damage: the valid prefix is recovered and the tear is
//! counted ([`WalRecovery::torn_tail`]). A bad frame **followed by a
//! valid one** (a bit flip in the middle of the log) is not crash damage
//! and recovery refuses it outright.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

use apc_obs::MetricsSnapshot;
use apc_progress_macros::progress;

use crate::metrics::{elapsed_ns, WalMetrics};
use crate::ops::{Key, StoreOp, StoreResp};
use crate::persist::PersistError;
use crate::router::fnv1a64;

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: [u8; 4] = *b"APCW";

/// Current WAL segment format version.
pub const WAL_VERSION: u32 = 1;

/// Segment header size: magic + version + segment sequence number.
const SEGMENT_HEADER: usize = 16;

/// Upper bound on one frame's payload — a decode-time sanity cap so a
/// corrupted length field cannot make the reader attempt a huge
/// allocation.
const MAX_FRAME_PAYLOAD: u32 = 16 << 20;

/// The durability class of one commit — the paper's asymmetric progress
/// conditions applied to the durability axis.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum DurabilityClass {
    /// Ride the coalesced group-commit flusher (the default): the commit
    /// returns as soon as its frame is buffered; a crash may lose frames
    /// buffered since the last flush cycle.
    #[default]
    Group,
    /// Synchronous durability (VIP opt-in): the commit returns only after
    /// its frame is fsync'd. See
    /// [`Client::execute_durable`](crate::store::Client::execute_durable).
    Sync,
}

/// Errors of the synchronous-durability commit path
/// ([`Client::execute_durable`](crate::store::Client::execute_durable)).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DurabilityError {
    /// Synchronous durability is a VIP privilege; guest commits always
    /// ride the group flusher (asymmetric durability, by design).
    GuestTier,
    /// The store was built without a WAL; there is nothing to fsync.
    NoWal,
    /// The WAL flush itself failed; the commit is applied in memory but
    /// its durability is **not** acknowledged.
    Wal(PersistError),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::GuestTier => {
                f.write_str("synchronous durability is a VIP privilege (guest tier denied)")
            }
            DurabilityError::NoWal => f.write_str("the store has no WAL attached"),
            DurabilityError::Wal(e) => write!(f, "WAL flush failed: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

/// Tuning knobs of the WAL's group-commit flusher and segment layout.
/// These are the durability-side twins of the ops layer's batching knobs;
/// [`Persister`](crate::persist::Persister) carries them via
/// [`Persister::with_wal`](crate::persist::Persister::with_wal).
#[derive(Copy, Clone, Debug)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes (checkpoint seals also rotate, regardless of size).
    pub segment_bytes: u64,
    /// Flush cadence of the background flusher: maximum time a buffered
    /// group-commit frame waits before a write-and-fsync cycle.
    pub flush_interval: Duration,
    /// Nudge the flusher early once this many frames are buffered — the
    /// maximum coalescing window of one group commit.
    pub max_coalesced_frames: u64,
    /// Spawn the background flusher thread. Without it, frames are only
    /// flushed by [`Wal::sync`] callers (sync commits and checkpoint
    /// rotations) — useful for deterministic tests.
    pub background_flusher: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 4 << 20,
            flush_interval: Duration::from_millis(2),
            max_coalesced_frames: 128,
            background_flusher: true,
        }
    }
}

/// One logged commit: the resolved effects of a mutating batch, stamped
/// with its per-shard linearization position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalFrame {
    /// The committing shard instance's creation/split epoch
    /// ([`ShardState::epoch`](crate::ops::ShardState::epoch)) — the major
    /// replay sort key: a key's writes on an earlier shard instance all
    /// precede its writes on a later one.
    pub epoch: u64,
    /// The shard id the batch committed on.
    pub shard: u32,
    /// The committing port's replay cursor right after the append — one
    /// past the batch's own log cell, exact and monotone per shard.
    pub cell: u64,
    /// The durability class the commit was issued under.
    pub class: DurabilityClass,
    /// Resolved effects in batch order: `Some(v)` writes, `None` deletes.
    /// Failed CAS and read-only ops contribute nothing.
    pub effects: Vec<(Key, Option<u64>)>,
}

/// Everything [`Wal::open`] recovered from the segments already on disk,
/// consumed by
/// [`StoreBuilder::recover_with_wal`](crate::StoreBuilder::recover_with_wal).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WalRecovery {
    /// Every decoded frame, in file order.
    pub frames: Vec<WalFrame>,
    /// Whether a torn tail was cut off (expected crash damage; the frames
    /// above are the valid prefix).
    pub torn_tail: bool,
    /// Segments scanned.
    pub segments: u64,
}

impl WalRecovery {
    /// Collapses the recovered frames into one final effect per key, in
    /// per-shard linearization order: frames sort by
    /// `(epoch, shard, cell)` — exact within a shard instance, and
    /// instance-ordered for keys that migrated across a split or merge —
    /// then fold left, last writer per key winning.
    pub fn collapsed_effects(&self) -> BTreeMap<Key, Option<u64>> {
        let mut ordered: Vec<&WalFrame> = self.frames.iter().collect();
        ordered.sort_by_key(|f| (f.epoch, f.shard, f.cell));
        let mut out = BTreeMap::new();
        for frame in ordered {
            for (key, effect) in &frame.effects {
                out.insert(key.clone(), *effect);
            }
        }
        out
    }
}

/// Resolves the effects of one committed batch from its `(op, response)`
/// pairs, as decided at the batch's linearization point: a `Put` sets, a
/// `Remove` deletes, a *successful* `Cas` sets its new value; reads,
/// failed CAS, and bounced (`Moved`) operations have no effect. The
/// result is what a [`WalFrame`] records — absolute last-writer-wins
/// effects, which is what makes replay idempotent.
pub fn resolved_effects(ops: &[StoreOp], resps: &[StoreResp]) -> Vec<(Key, Option<u64>)> {
    ops.iter()
        .zip(resps)
        .filter_map(|(op, resp)| match (op, resp) {
            (_, StoreResp::Moved { .. } | StoreResp::Unavailable { .. }) => None,
            (StoreOp::Put(key, value), _) => Some((key.clone(), Some(*value))),
            (StoreOp::Remove(key), _) => Some((key.clone(), None)),
            (StoreOp::Cas { key, new, .. }, StoreResp::Cas { ok: true, .. }) => {
                Some((key.clone(), Some(*new)))
            }
            _ => None,
        })
        .collect()
}

/// The write half of one open segment.
struct SegmentWriter {
    file: fs::File,
    /// Bytes written so far, header included (the rotation meter).
    bytes: u64,
}

/// Mutable WAL state: the buffer, the open segment, and the group-commit
/// generations (the same leader/waiter protocol as
/// [`Persister::persist`](crate::persist::Persister::persist)).
struct WalInner {
    /// The open segment (`None` after an open failure; the next flush
    /// cycle retries).
    writer: Option<SegmentWriter>,
    /// Sequence number of the open segment.
    seg_seq: u64,
    /// Encoded frames awaiting their write-and-fsync cycle.
    pending: Vec<u8>,
    /// Frames inside `pending`.
    pending_frames: u64,
    /// Generation of the newest enqueued frame.
    appended: u64,
    /// Generation through which flush cycles have completed.
    completed: u64,
    /// Generation through which a *successful* cycle has completed: every
    /// frame at or below this line is fsync'd.
    completed_ok: u64,
    /// Whether a leader is currently flushing.
    flushing: bool,
    /// The most recent flush failure (returned to sync waiters whose
    /// frames no successful cycle has covered).
    last_error: Option<PersistError>,
    /// Set by [`Wal::simulate_crash`] and on drop: enqueues become no-ops
    /// and the flusher exits.
    shutdown: bool,
}

/// The channel between the WAL and its background flusher thread. Kept
/// outside [`Wal`] (its own `Arc`) so the thread can sleep without holding
/// the WAL alive — a dropped WAL must actually drop.
struct FlusherSignal {
    state: Mutex<FlusherNudge>,
    cv: Condvar,
}

#[derive(Default)]
struct FlusherNudge {
    nudged: bool,
    shutdown: bool,
}

/// The op-granular write-ahead log: an append-only sequence of effect
/// frames in rotated, checksummed segment files, with a coalescing
/// group-commit flusher. See the [module docs](self).
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    inner: Mutex<WalInner>,
    /// Wakes sync waiters when a flush cycle completes.
    flushed: Condvar,
    signal: Arc<FlusherSignal>,
    /// WAL instruments — atomics outside the buffer mutex, so scraping
    /// never queues behind an in-flight fsync.
    metrics: WalMetrics,
    /// Frames recovered from pre-existing segments at open, taken once by
    /// [`StoreBuilder::recover_with_wal`](crate::StoreBuilder::recover_with_wal).
    recovered: Mutex<Option<WalRecovery>>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal").field("dir", &self.dir).field("cfg", &self.cfg).finish()
    }
}

impl Wal {
    /// Opens a WAL in `dir` (created if missing): scans any segments a
    /// previous process left behind (fail-closed; see the
    /// [module docs](self) failure policy), then starts a **fresh**
    /// segment after the highest existing sequence — an old segment is
    /// never appended to, so recovery never has to distinguish two
    /// processes' writes inside one file.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] if the directory or segment cannot be
    /// created, any decode variant if the existing segments are corrupt
    /// beyond a torn tail.
    pub fn open(dir: impl Into<PathBuf>, cfg: WalConfig) -> Result<Arc<Wal>, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let (recovery, next_seq) = read_segments(&dir)?;
        let metrics = WalMetrics::new();
        metrics.set_replay_frames(recovery.frames.len() as u64);
        if recovery.torn_tail {
            metrics.record_torn_tail();
        }
        let writer = open_segment(&dir, next_seq)?;
        let wal = Arc::new(Wal {
            dir,
            cfg,
            inner: Mutex::new(WalInner {
                writer: Some(writer),
                seg_seq: next_seq,
                pending: Vec::new(),
                pending_frames: 0,
                appended: 0,
                completed: 0,
                completed_ok: 0,
                flushing: false,
                last_error: None,
                shutdown: false,
            }),
            flushed: Condvar::new(),
            signal: Arc::new(FlusherSignal {
                state: Mutex::new(FlusherNudge::default()),
                cv: Condvar::new(),
            }),
            metrics,
            recovered: Mutex::new(Some(recovery)),
        });
        if cfg.background_flusher {
            let weak = Arc::downgrade(&wal);
            let signal = Arc::clone(&wal.signal);
            let interval = cfg.flush_interval;
            std::thread::spawn(move || flusher_loop(weak, signal, interval));
        }
        Ok(wal)
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured knobs.
    pub fn config(&self) -> WalConfig {
        self.cfg
    }

    /// Takes the frames recovered from pre-existing segments (once).
    pub(crate) fn take_recovered(&self) -> Option<WalRecovery> {
        self.recovered.lock().ok().and_then(|mut slot| slot.take())
    }

    /// A wait-free scrape of the WAL's metric series (appends, flush
    /// cycles, fsync latency, group sizes, rotations, truncations),
    /// ready to [`merge`](MetricsSnapshot::merge) into a
    /// [`Store::scrape`](crate::Store::scrape) snapshot. Reads atomics
    /// only — never the buffer mutex — so a dashboard poller cannot
    /// queue behind an in-flight fsync.
    #[progress(wait_free)]
    pub fn scrape(&self) -> MetricsSnapshot {
        MetricsSnapshot { samples: self.metrics.samples() }
    }

    /// The WAL's instrument registry (commit-path counters live here so
    /// the store can record sync denials without locking).
    pub(crate) fn metrics(&self) -> &WalMetrics {
        &self.metrics
    }

    /// Enqueues one frame into the group-commit buffer and returns its
    /// generation (a ticket [`Wal::sync`] can wait on). Never blocks on
    /// I/O: the critical section is an encode-and-append under the buffer
    /// mutex. Frames enqueued after [`Wal::simulate_crash`] are silently
    /// discarded — a crashed log writes nothing.
    ///
    /// Durability is classless here: the *frame* records the commit's
    /// class for recovery accounting, but blocking-until-fsync is the
    /// caller's choice, made by following up with [`Wal::sync`].
    #[progress(blocking)]
    pub fn enqueue(&self, frame: &WalFrame) -> u64 {
        let mut st = self.inner.lock().expect("WAL state poisoned");
        if st.shutdown {
            return st.appended;
        }
        let before = st.pending.len();
        encode_frame(&mut st.pending, frame);
        let bytes = (st.pending.len() - before) as u64;
        st.pending_frames += 1;
        st.appended += 1;
        let gen = st.appended;
        let nudge = st.pending_frames >= self.cfg.max_coalesced_frames;
        drop(st);
        self.metrics.record_append(bytes, frame.class);
        if nudge {
            self.nudge_flusher();
        }
        gen
    }

    /// Blocks until every frame enqueued before this call is fsync'd —
    /// the synchronous-durability wait. Concurrent callers coalesce into
    /// one write-and-fsync cycle via the same leader/waiter protocol as
    /// [`Persister::persist`](crate::persist::Persister::persist).
    ///
    /// # Errors
    ///
    /// `Ok` iff a successful cycle covered this call's frames — then they
    /// are durably on disk. `Err` with the latest flush error otherwise.
    #[progress(blocking)]
    pub fn sync(&self) -> Result<(), PersistError> {
        let mut st = self.inner.lock().expect("WAL state poisoned");
        let my_gen = st.appended;
        loop {
            if st.completed >= my_gen {
                return if st.completed_ok >= my_gen {
                    Ok(())
                } else {
                    Err(st
                        .last_error
                        .clone()
                        .unwrap_or(PersistError::Corrupt("flush failed without recording why")))
                };
            }
            if !st.flushing {
                st = self.flush_cycle(st);
            } else {
                st = self.flushed.wait(st).expect("WAL state poisoned");
            }
        }
    }

    /// Rotates to a fresh segment and returns its sequence number — the
    /// checkpoint-coordination point: the caller seals its snapshot
    /// *after* rotating, then calls [`Wal::truncate_before`] with the
    /// returned sequence once the snapshot is durably renamed. Pending
    /// frames are flushed (and fsync'd) into the old segment first, so
    /// the rotation point cleanly separates pre-seal from post-seal
    /// frames.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] if the flush or the new segment's creation
    /// fails (the WAL stays usable; the next cycle retries the open).
    #[progress(blocking)]
    pub fn rotate(&self) -> Result<u64, PersistError> {
        let mut st = self.inner.lock().expect("WAL state poisoned");
        // Drain the buffer through the normal leadership protocol first.
        while st.flushing {
            st = self.flushed.wait(st).expect("WAL state poisoned");
        }
        if st.pending_frames > 0 {
            st = self.flush_cycle(st);
            if st.completed_ok < st.completed {
                let err = st
                    .last_error
                    .clone()
                    .unwrap_or(PersistError::Corrupt("flush failed without recording why"));
                return Err(err);
            }
        }
        let next = st.seg_seq + 1;
        let writer = open_segment(&self.dir, next)?;
        st.writer = Some(writer);
        st.seg_seq = next;
        drop(st);
        self.metrics.record_rotation();
        Ok(next)
    }

    /// Deletes every segment with a sequence number below `seq` (parsed
    /// from the file names this module writes; foreign files are left
    /// alone). Returns how many were removed. Called by the
    /// [`Persister`](crate::persist::Persister) after its snapshot rename
    /// lands — see [`Wal::rotate`] for why this is safe.
    #[progress(blocking)]
    pub fn truncate_before(&self, seq: u64) -> u64 {
        let mut deleted = 0;
        let Ok(entries) = fs::read_dir(&self.dir) else { return 0 };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(s) = name.to_str().and_then(segment_seq_of) else { continue };
            if s < seq && fs::remove_file(entry.path()).is_ok() {
                deleted += 1;
            }
        }
        if deleted > 0 {
            self.metrics.record_truncation(deleted);
        }
        deleted
    }

    /// Frames buffered but not yet flushed (test/diagnostic visibility).
    #[progress(blocking)]
    pub fn pending_frames(&self) -> u64 {
        self.inner.lock().expect("WAL state poisoned").pending_frames
    }

    /// Fault-injection hook: model a process kill. The buffer is
    /// discarded un-written (exactly what a crash does to it), the
    /// flusher is stopped, and every later enqueue is a no-op. The
    /// segment files are left as the "dead process" wrote them, ready to
    /// be recovered — or further mutilated — by a test.
    pub fn simulate_crash(&self) {
        if let Ok(mut st) = self.inner.lock() {
            st.shutdown = true;
            st.pending.clear();
            st.pending_frames = 0;
        }
        if let Ok(mut sig) = self.signal.state.lock() {
            sig.shutdown = true;
        }
        self.signal.cv.notify_all();
        self.flushed.notify_all();
    }

    /// One write-and-fsync cycle as the leader. Takes the guard holding
    /// `flushing == false`, returns with the lock re-acquired and the
    /// cycle's generations published.
    fn flush_cycle<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, WalInner>,
    ) -> std::sync::MutexGuard<'a, WalInner> {
        st.flushing = true;
        let target = st.appended;
        let batch = std::mem::take(&mut st.pending);
        let frames = st.pending_frames;
        st.pending_frames = 0;
        // Take the writer out so I/O runs without the lock: enqueues keep
        // landing in the (fresh) buffer meanwhile.
        let mut writer = st.writer.take();
        let seg_seq = st.seg_seq;
        drop(st);
        let start = std::time::Instant::now();
        let outcome = self.write_batch(&mut writer, seg_seq, &batch);
        let rotated = match &outcome {
            Ok(r) => *r,
            Err(_) => false,
        };
        self.metrics.record_flush(elapsed_ns(start), frames, outcome.is_ok());
        if rotated {
            self.metrics.record_rotation();
        }
        let mut st = self.inner.lock().expect("WAL state poisoned");
        if st.writer.is_none() {
            st.writer = writer;
            if rotated {
                st.seg_seq = seg_seq + 1;
            }
        }
        st.flushing = false;
        st.completed = target;
        match outcome {
            Ok(_) => st.completed_ok = target,
            Err(e) => st.last_error = Some(e),
        }
        self.flushed.notify_all();
        st
    }

    /// Writes one batch to the open segment and fsyncs it, rotating first
    /// if the segment is over its size threshold. Returns whether a
    /// rotation happened. Reopens the segment if a previous cycle failed
    /// to.
    fn write_batch(
        &self,
        writer: &mut Option<SegmentWriter>,
        seg_seq: u64,
        batch: &[u8],
    ) -> Result<bool, PersistError> {
        if batch.is_empty() {
            return Ok(false);
        }
        let mut rotated = false;
        if writer.as_ref().is_some_and(|w| w.bytes >= self.cfg.segment_bytes) {
            // Seal the full segment (it was fsync'd by the cycle that
            // filled it) and roll forward.
            *writer = Some(open_segment(&self.dir, seg_seq + 1)?);
            rotated = true;
        }
        if writer.is_none() {
            // A previous cycle failed to open the segment; retry here.
            *writer = Some(open_segment(&self.dir, seg_seq)?);
        }
        let w = writer.as_mut().expect("writer was just ensured above");
        w.file.write_all(batch)?;
        w.file.sync_all()?;
        w.bytes += batch.len() as u64;
        Ok(rotated)
    }

    /// Wakes the background flusher early (buffer reached the coalescing
    /// cap).
    fn nudge_flusher(&self) {
        if let Ok(mut sig) = self.signal.state.lock() {
            sig.nudged = true;
        }
        self.signal.cv.notify_all();
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Stop the flusher, then make a clean shutdown durable (a crash
        // never runs this — tests model one with `simulate_crash`).
        if let Ok(mut sig) = self.signal.state.lock() {
            sig.shutdown = true;
        }
        self.signal.cv.notify_all();
        let Ok(mut st) = self.inner.lock() else { return };
        if st.shutdown || st.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut st.pending);
        st.pending_frames = 0;
        let mut writer = st.writer.take();
        let seg_seq = st.seg_seq;
        drop(st);
        let _ = self.write_batch(&mut writer, seg_seq, &batch);
    }
}

/// The background flusher: sleeps on its own signal (holding only a
/// [`Weak`] to the WAL, so a dropped WAL actually drops), wakes on the
/// cadence or an early nudge, and runs one flush cycle if there is work.
fn flusher_loop(weak: Weak<Wal>, signal: Arc<FlusherSignal>, interval: Duration) {
    loop {
        {
            let mut sig = match signal.state.lock() {
                Ok(s) => s,
                Err(_) => return,
            };
            if !sig.nudged && !sig.shutdown {
                sig = match signal.cv.wait_timeout(sig, interval) {
                    Ok((s, _)) => s,
                    Err(_) => return,
                };
            }
            if sig.shutdown {
                return;
            }
            sig.nudged = false;
        }
        let Some(wal) = weak.upgrade() else { return };
        let st = wal.inner.lock().expect("WAL state poisoned");
        if st.shutdown {
            return;
        }
        if st.pending_frames > 0 && !st.flushing {
            drop(wal.flush_cycle(st));
        }
        // `wal` drops here: the thread never holds the Arc across a sleep.
    }
}

/// Opens (creates) segment `seq` and writes its header; best-effort
/// fsyncs the directory so the creation itself survives a crash.
fn open_segment(dir: &Path, seq: u64) -> Result<SegmentWriter, PersistError> {
    let path = dir.join(segment_name(seq));
    let mut file = fs::File::create(&path)?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER);
    header.extend_from_slice(&WAL_MAGIC);
    header.extend_from_slice(&WAL_VERSION.to_le_bytes());
    header.extend_from_slice(&seq.to_le_bytes());
    file.write_all(&header)?;
    file.sync_all()?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(SegmentWriter { file, bytes: SEGMENT_HEADER as u64 })
}

/// The file name of segment `seq`.
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:016x}.apcw")
}

/// Parses a segment sequence number back out of a file name written by
/// [`segment_name`]; `None` for foreign files.
fn segment_seq_of(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".apcw")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Encodes one frame (length prefix, payload, CRC) into `buf`.
fn encode_frame(buf: &mut Vec<u8>, frame: &WalFrame) {
    let len_at = buf.len();
    buf.extend_from_slice(&0u32.to_le_bytes()); // payload_len, patched below
    let payload_start = buf.len();
    buf.extend_from_slice(&frame.epoch.to_le_bytes());
    buf.extend_from_slice(&frame.shard.to_le_bytes());
    buf.extend_from_slice(&frame.cell.to_le_bytes());
    buf.push(match frame.class {
        DurabilityClass::Group => 0,
        DurabilityClass::Sync => 1,
    });
    buf.extend_from_slice(&(frame.effects.len() as u32).to_le_bytes());
    for (key, effect) in &frame.effects {
        buf.push(match effect {
            Some(_) => 0,
            None => 1,
        });
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(key.as_bytes());
        if let Some(value) = effect {
            buf.extend_from_slice(&value.to_le_bytes());
        }
    }
    let payload_len = (buf.len() - payload_start) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
    let crc = fnv1a64(&buf[payload_start..]);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes one frame's payload (everything between the length prefix and
/// the CRC).
fn decode_payload(payload: &[u8]) -> Result<WalFrame, PersistError> {
    let mut r = FrameReader { buf: payload, pos: 0 };
    let epoch = r.u64()?;
    let shard = r.u32()?;
    let cell = r.u64()?;
    let class = match r.u8()? {
        0 => DurabilityClass::Group,
        1 => DurabilityClass::Sync,
        _ => return Err(PersistError::Corrupt("unknown durability class tag")),
    };
    let count = r.u32()? as usize;
    let mut effects = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let tag = r.u8()?;
        let key_len = r.u32()? as usize;
        let key = std::str::from_utf8(r.take(key_len)?)
            .map_err(|_| PersistError::Corrupt("WAL key is not valid UTF-8"))?
            .to_owned();
        let effect = match tag {
            0 => Some(r.u64()?),
            1 => None,
            _ => return Err(PersistError::Corrupt("unknown WAL effect tag")),
        };
        effects.push((key, effect));
    }
    if r.pos != payload.len() {
        return Err(PersistError::Corrupt("trailing bytes inside a WAL frame"));
    }
    Ok(WalFrame { epoch, shard, cell, class, effects })
}

/// A bounds-checked little-endian reader over one frame payload.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Corrupt("length overflows"))?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated {
                needed: n,
                available: self.buf.len() - self.pos,
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// One segment's parse result: the frames that decoded cleanly, and the
/// first failure (if any) with whether any *valid* frame follows it.
struct SegmentScan {
    seq: u64,
    frames: Vec<WalFrame>,
    failure: Option<PersistError>,
    /// A valid frame decodes *after* the failure — mid-log corruption,
    /// never crash damage.
    valid_after_failure: bool,
}

/// Parses one segment file.
fn scan_segment(path: &Path) -> Result<SegmentScan, PersistError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SEGMENT_HEADER {
        // A header torn mid-write: structurally empty. Whether that is
        // tolerable (tail) or not (middle) is the caller's call.
        return Ok(SegmentScan {
            seq: u64::MAX,
            frames: Vec::new(),
            failure: Some(PersistError::Truncated {
                needed: SEGMENT_HEADER,
                available: bytes.len(),
            }),
            valid_after_failure: false,
        });
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version == 0 || version > WAL_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut frames = Vec::new();
    let mut pos = SEGMENT_HEADER;
    let mut failure = None;
    let mut failure_end = 0;
    while pos < bytes.len() {
        match scan_frame(&bytes, pos) {
            Ok((frame, next)) => {
                frames.push(frame);
                pos = next;
            }
            Err((e, skip_to)) => {
                failure = Some(e);
                failure_end = skip_to;
                break;
            }
        }
    }
    // Look past the failure: if the bad frame's extent was still readable,
    // any valid frame after it proves mid-log corruption.
    let mut valid_after_failure = false;
    if failure.is_some() && failure_end > 0 {
        let mut pos = failure_end;
        while pos < bytes.len() {
            match scan_frame(&bytes, pos) {
                Ok((_, next)) => {
                    valid_after_failure = true;
                    pos = next;
                }
                Err(_) => break,
            }
        }
    }
    Ok(SegmentScan { seq, frames, failure, valid_after_failure })
}

/// Decodes the frame starting at `pos`. On success returns the frame and
/// the next frame's offset; on failure, the error and the offset just
/// past the frame's claimed extent (0 when even that is unknowable —
/// i.e. the tear reaches the end of the file).
fn scan_frame(bytes: &[u8], pos: usize) -> Result<(WalFrame, usize), (PersistError, usize)> {
    let avail = bytes.len() - pos;
    if avail < 4 {
        return Err((PersistError::Truncated { needed: 4, available: avail }, 0));
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err((PersistError::Corrupt("WAL frame length exceeds the sanity cap"), 0));
    }
    let payload_start = pos + 4;
    let crc_at = payload_start + len as usize;
    let end = crc_at + 8;
    if end > bytes.len() {
        return Err((PersistError::Truncated { needed: end - pos, available: avail }, 0));
    }
    let payload = &bytes[payload_start..crc_at];
    let stored = u64::from_le_bytes(bytes[crc_at..end].try_into().expect("8 bytes"));
    if fnv1a64(payload) != stored {
        return Err((PersistError::ChecksumMismatch { shard: None }, end));
    }
    match decode_payload(payload) {
        Ok(frame) => Ok((frame, end)),
        Err(e) => Err((e, end)),
    }
}

/// Scans every segment in `dir`, applying the failure policy from the
/// [module docs](self): a failure qualifies as a torn tail only when no
/// valid frame exists anywhere after it — in its own segment or a later
/// one. Returns the recovery and the sequence number the next fresh
/// segment should use.
fn read_segments(dir: &Path) -> Result<(WalRecovery, u64), PersistError> {
    let mut paths: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)?.flatten() {
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(segment_seq_of) {
            paths.push((seq, entry.path()));
        }
    }
    paths.sort();
    let mut recovery = WalRecovery::default();
    let mut next_seq = 1;
    let mut tear: Option<PersistError> = None;
    for (name_seq, path) in &paths {
        let scan = scan_segment(path)?;
        if scan.seq != u64::MAX && scan.seq != *name_seq {
            return Err(PersistError::Corrupt("WAL segment header disagrees with its file name"));
        }
        recovery.segments += 1;
        next_seq = name_seq + 1;
        if tear.is_some() && (!scan.frames.is_empty() || scan.failure.is_some()) {
            // Frames (or further damage) after an earlier segment's tear:
            // one crash cannot tear the middle of the log.
            return Err(tear.take().expect("tear is some"));
        }
        recovery.frames.extend(scan.frames);
        if let Some(e) = scan.failure {
            if scan.valid_after_failure {
                return Err(e);
            }
            tear = Some(e);
        }
    }
    recovery.torn_tail = tear.is_some();
    Ok((recovery, next_seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory under the workspace target dir, unique per
    /// test, cleared of any previous run's leftovers.
    fn scratch(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp-unit-tests/wal-unit")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn no_flusher() -> WalConfig {
        WalConfig { background_flusher: false, ..WalConfig::default() }
    }

    fn frame(shard: u32, cell: u64, effects: &[(&str, Option<u64>)]) -> WalFrame {
        WalFrame {
            epoch: 0,
            shard,
            cell,
            class: DurabilityClass::Group,
            effects: effects.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn enqueue_sync_replay_roundtrip() {
        let dir = scratch("roundtrip");
        let wal = Wal::open(&dir, no_flusher()).unwrap();
        assert_eq!(wal.take_recovered().unwrap(), WalRecovery::default());
        wal.enqueue(&frame(0, 1, &[("a", Some(1)), ("b", Some(2))]));
        wal.enqueue(&frame(1, 1, &[("c", None)]));
        assert_eq!(wal.pending_frames(), 2);
        wal.sync().unwrap();
        assert_eq!(wal.pending_frames(), 0);
        drop(wal);
        let reopened = Wal::open(&dir, no_flusher()).unwrap();
        let rec = reopened.take_recovered().unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(rec.frames[0].effects, vec![("a".to_string(), Some(1)), ("b".into(), Some(2))]);
        assert_eq!(rec.frames[1].effects, vec![("c".to_string(), None)]);
    }

    #[test]
    fn clean_drop_flushes_pending() {
        let dir = scratch("drop-flush");
        let wal = Wal::open(&dir, no_flusher()).unwrap();
        wal.enqueue(&frame(0, 1, &[("k", Some(9))]));
        drop(wal); // no sync: the Drop impl writes the tail out
        let reopened = Wal::open(&dir, no_flusher()).unwrap();
        assert_eq!(reopened.take_recovered().unwrap().frames.len(), 1);
    }

    #[test]
    fn simulated_crash_loses_exactly_the_unsynced_buffer() {
        let dir = scratch("crash-buffer");
        let wal = Wal::open(&dir, no_flusher()).unwrap();
        wal.enqueue(&frame(0, 1, &[("durable", Some(1))]));
        wal.sync().unwrap();
        wal.enqueue(&frame(0, 2, &[("lost", Some(2))]));
        wal.simulate_crash();
        drop(wal);
        let reopened = Wal::open(&dir, no_flusher()).unwrap();
        let rec = reopened.take_recovered().unwrap();
        assert!(!rec.torn_tail, "an un-written buffer is not a torn file");
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].effects[0].0, "durable");
    }

    #[test]
    fn torn_tail_recovers_valid_prefix_at_every_truncation_offset() {
        let dir = scratch("torn-tail");
        let wal = Wal::open(&dir, no_flusher()).unwrap();
        wal.enqueue(&frame(0, 1, &[("a", Some(1))]));
        wal.enqueue(&frame(0, 2, &[("b", Some(2))]));
        wal.enqueue(&frame(0, 3, &[("c", Some(3))]));
        wal.sync().unwrap();
        wal.simulate_crash();
        let seg = dir.join(segment_name(1));
        let good = fs::read(&seg).unwrap();
        drop(wal);
        for cut in SEGMENT_HEADER..good.len() {
            fs::write(&seg, &good[..cut]).unwrap();
            let (rec, _) = read_segments(&dir).unwrap_or_else(|e| {
                panic!("truncation to {cut} bytes must stay recoverable, got {e}")
            });
            assert!(
                rec.frames.len() < 3 || cut == good.len(),
                "a cut at {cut} cannot keep all frames"
            );
            // The prefix property: recovered frames are exactly the first k.
            for (i, f) in rec.frames.iter().enumerate() {
                assert_eq!(f.cell, (i + 1) as u64, "cut {cut} recovered out of order");
            }
        }
    }

    #[test]
    fn mid_log_bit_flip_fails_closed() {
        let dir = scratch("bit-flip");
        let wal = Wal::open(&dir, no_flusher()).unwrap();
        wal.enqueue(&frame(0, 1, &[("a", Some(1))]));
        wal.enqueue(&frame(0, 2, &[("b", Some(2))]));
        wal.enqueue(&frame(0, 3, &[("c", Some(3))]));
        wal.sync().unwrap();
        wal.simulate_crash();
        drop(wal);
        let seg = dir.join(segment_name(1));
        let good = fs::read(&seg).unwrap();
        // Flip one byte inside the FIRST frame's payload: frames 2 and 3
        // still decode after it, so this is corruption, not a tear.
        let mut bad = good.clone();
        bad[SEGMENT_HEADER + 6] ^= 0x40;
        fs::write(&seg, &bad).unwrap();
        let err = read_segments(&dir).expect_err("mid-log corruption must fail closed");
        assert_eq!(err, PersistError::ChecksumMismatch { shard: None });
        // The same flip in the LAST frame is a tear: prefix recovered.
        let mut tail = good.clone();
        let last_len = tail.len();
        tail[last_len - 9] ^= 0x40; // inside the last frame's payload/crc
        fs::write(&seg, &tail).unwrap();
        let (rec, _) = read_segments(&dir).expect("tail damage recovers the prefix");
        assert!(rec.torn_tail);
        assert_eq!(rec.frames.len(), 2);
    }

    #[test]
    fn rotation_and_truncation_manage_segments() {
        let dir = scratch("rotate");
        let wal = Wal::open(&dir, no_flusher()).unwrap();
        wal.enqueue(&frame(0, 1, &[("old", Some(1))]));
        wal.sync().unwrap();
        let cut = wal.rotate().unwrap();
        assert_eq!(cut, 2);
        wal.enqueue(&frame(0, 2, &[("new", Some(2))]));
        wal.sync().unwrap();
        assert_eq!(wal.truncate_before(cut), 1, "exactly the pre-rotation segment goes");
        drop(wal);
        let reopened = Wal::open(&dir, no_flusher()).unwrap();
        let rec = reopened.take_recovered().unwrap();
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].effects[0].0, "new");
    }

    #[test]
    fn size_threshold_rotates_automatically() {
        let dir = scratch("auto-rotate");
        let cfg = WalConfig { segment_bytes: 64, ..no_flusher() };
        let wal = Wal::open(&dir, cfg).unwrap();
        for i in 0..8 {
            wal.enqueue(&frame(0, i + 1, &[("key-with-some-length", Some(i))]));
            wal.sync().unwrap();
        }
        drop(wal);
        let segs = fs::read_dir(&dir).unwrap().count();
        assert!(segs > 1, "64-byte threshold must have rotated, found {segs} segment(s)");
        let reopened = Wal::open(&dir, no_flusher()).unwrap();
        assert_eq!(reopened.take_recovered().unwrap().frames.len(), 8);
    }

    #[test]
    fn frames_after_a_torn_segment_fail_closed() {
        let dir = scratch("torn-middle");
        let wal = Wal::open(&dir, no_flusher()).unwrap();
        wal.enqueue(&frame(0, 1, &[("a", Some(1))]));
        wal.sync().unwrap();
        wal.rotate().unwrap();
        wal.enqueue(&frame(0, 2, &[("b", Some(2))]));
        wal.sync().unwrap();
        wal.simulate_crash();
        drop(wal);
        // Tear the FIRST segment: frames live in the second, so the tear
        // is mid-log.
        let seg1 = dir.join(segment_name(1));
        let bytes = fs::read(&seg1).unwrap();
        fs::write(&seg1, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_segments(&dir).is_err(), "a torn middle segment must fail closed");
    }

    #[test]
    fn collapsed_effects_order_by_epoch_shard_cell() {
        let rec = WalRecovery {
            frames: vec![
                // Same shard, cells out of file order: cell order wins.
                WalFrame {
                    epoch: 0,
                    shard: 0,
                    cell: 5,
                    class: DurabilityClass::Group,
                    effects: vec![("k".into(), Some(2))],
                },
                WalFrame {
                    epoch: 0,
                    shard: 0,
                    cell: 4,
                    class: DurabilityClass::Group,
                    effects: vec![("k".into(), Some(1))],
                },
                // A later shard instance (epoch 3) writes last.
                WalFrame {
                    epoch: 3,
                    shard: 2,
                    cell: 1,
                    class: DurabilityClass::Sync,
                    effects: vec![("k".into(), Some(9)), ("gone".into(), None)],
                },
            ],
            torn_tail: false,
            segments: 1,
        };
        let effects = rec.collapsed_effects();
        assert_eq!(effects.get("k"), Some(&Some(9)));
        assert_eq!(effects.get("gone"), Some(&None));
    }

    #[test]
    fn background_flusher_makes_group_commits_durable() {
        let dir = scratch("flusher");
        let cfg = WalConfig {
            flush_interval: Duration::from_millis(1),
            background_flusher: true,
            ..WalConfig::default()
        };
        let wal = Wal::open(&dir, cfg).unwrap();
        wal.enqueue(&frame(0, 1, &[("k", Some(1))]));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while wal.pending_frames() > 0 {
            assert!(std::time::Instant::now() < deadline, "flusher never drained the buffer");
            std::thread::sleep(Duration::from_millis(1));
        }
        wal.simulate_crash(); // buffer already empty: nothing to lose
        drop(wal);
        let reopened = Wal::open(&dir, no_flusher()).unwrap();
        assert_eq!(reopened.take_recovered().unwrap().frames.len(), 1);
    }

    #[test]
    fn foreign_files_are_ignored_everywhere() {
        let dir = scratch("foreign");
        let wal = Wal::open(&dir, no_flusher()).unwrap();
        fs::write(dir.join("notes.txt"), b"not a segment").unwrap();
        fs::write(dir.join("wal-zzzz.apcw"), b"bad name").unwrap();
        wal.enqueue(&frame(0, 1, &[("k", Some(1))]));
        wal.sync().unwrap();
        let cut = wal.rotate().unwrap();
        wal.truncate_before(cut);
        assert!(dir.join("notes.txt").exists());
        assert!(dir.join("wal-zzzz.apcw").exists());
        drop(wal);
        let reopened = Wal::open(&dir, no_flusher()).unwrap();
        assert_eq!(reopened.take_recovered().unwrap().frames.len(), 0);
    }

    #[test]
    fn unsupported_version_and_bad_magic_are_typed() {
        let dir = scratch("bad-header");
        fs::create_dir_all(&dir).unwrap();
        let seg = dir.join(segment_name(1));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        fs::write(&seg, &bytes).unwrap();
        assert_eq!(
            read_segments(&dir).unwrap_err(),
            PersistError::UnsupportedVersion { found: 99 }
        );
        bytes[..4].copy_from_slice(b"XXXX");
        bytes[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
        fs::write(&seg, &bytes).unwrap();
        assert_eq!(read_segments(&dir).unwrap_err(), PersistError::BadMagic);
    }

    #[test]
    fn resolved_effects_capture_exactly_the_mutations() {
        let ops = vec![
            StoreOp::Get("r".into()),
            StoreOp::Put("p".into(), 1),
            StoreOp::Remove("d".into()),
            StoreOp::Cas { key: "won".into(), expect: None, new: 7 },
            StoreOp::Cas { key: "lost".into(), expect: None, new: 8 },
            StoreOp::Put("bounced".into(), 9),
            StoreOp::Scan { from: "".into(), to: "z".into() },
        ];
        let resps = vec![
            StoreResp::Value(None),
            StoreResp::Value(None),
            StoreResp::Value(Some(3)),
            StoreResp::Cas { ok: true, actual: None },
            StoreResp::Cas { ok: false, actual: Some(2) },
            StoreResp::Moved { epoch: 4 },
            StoreResp::Entries(Vec::new()),
        ];
        assert_eq!(
            resolved_effects(&ops, &resps),
            vec![("p".to_string(), Some(1)), ("d".to_string(), None), ("won".to_string(), Some(7)),],
            "reads, failed CAS, and bounced ops have no effect"
        );
    }

    #[test]
    fn errors_render() {
        assert!(DurabilityError::GuestTier.to_string().contains("VIP"));
        assert!(DurabilityError::NoWal.to_string().contains("WAL"));
        assert!(DurabilityError::Wal(PersistError::BadMagic).to_string().contains("magic"));
    }
}
