//! The unified `Request → Response` envelope: one operation surface for
//! the in-process [`Client`](crate::store::Client) and the wire protocol.
//!
//! Historically the client grew four ad-hoc entry points (`execute`,
//! `execute_durable`, `get`/`put`/`cas`/`remove` via `execute_one`, and
//! `scan`), each with its own partial error vocabulary smeared across
//! response variants ([`StoreResp::Moved`], [`StoreResp::Unavailable`])
//! and a separate durability error type. None of that had a shape a codec
//! could serialize. This module fixes the surface:
//!
//! * [`Request`] — `{ ops, credential, durability, deadline_ms,
//!   retry_budget }`, the envelope shared **verbatim** by
//!   [`Client::request`](crate::store::Client::request) and the `apc-net`
//!   wire frames;
//! * [`Response`] — per-operation `Result<StoreResp, StoreError>` in
//!   invocation order;
//! * [`StoreError`] — the consolidated, `#[non_exhaustive]` error surface
//!   with **stable wire discriminants**.
//!
//! The legacy entry points survive as thin wrappers over
//! [`Client::request`](crate::store::Client::request) (see the mapping
//! table below), so nothing breaks — but new code, and every byte on the
//! wire, speaks this envelope.
//!
//! ## Error consolidation map
//!
//! | legacy surface                              | consolidated form                      | wire |
//! |---------------------------------------------|----------------------------------------|------|
//! | [`StoreResp::Moved`] `{ epoch }`            | [`StoreError::Moved`] `{ epoch }`      | `1`  |
//! | [`DurabilityError::GuestTier`], tier over-claim | [`StoreError::GuestTier`]          | `2`  |
//! | (new) retry budget spent / backpressure shed | [`StoreError::RetryBudgetExhausted`]  | `3`  |
//! | [`StoreResp::Unavailable`] `{ version }`, [`DurabilityError::NoWal`] | [`StoreError::Unavailable`] `{ version }` | `4` |
//! | [`DurabilityError::Wal`] (failed covering flush), codec/persist corruption | [`StoreError::Corrupt`] | `5` |
//! | (new) deadline expiry                       | [`StoreError::DeadlineExceeded`]       | `6`  |
//!
//! `Moved` never escapes the in-process arms (the retry loop consumes it);
//! it exists so a wire peer that implements its own re-plan loop can see
//! the bounce. `RetryBudgetExhausted` is the envelope's 429: the typed
//! "try again later" that the guest tier surfaces **instead of blocking**.
//! `DeadlineExceeded` is its timeout twin: the request's own patience (not
//! the store's) ran out — retrying immediately with the same deadline is
//! pointless, which is exactly why the two are distinct discriminants.
//!
//! [`StoreResp::Moved`]: crate::ops::StoreResp::Moved
//! [`StoreResp::Unavailable`]: crate::ops::StoreResp::Unavailable
//! [`DurabilityError::GuestTier`]: crate::wal::DurabilityError::GuestTier
//! [`DurabilityError::NoWal`]: crate::wal::DurabilityError::NoWal
//! [`DurabilityError::Wal`]: crate::wal::DurabilityError::Wal

use std::fmt;

use crate::admission::{ClientTicket, ProgressClass};
use crate::ops::{StoreOp, StoreResp};
use crate::wal::DurabilityClass;

/// Sentinel retry budget: "retry until the topology publishes, waiting if
/// needed" — the legacy in-process semantics. [`Client::request`] routes
/// requests carrying this budget through the (blocking) waiting arm; any
/// finite budget takes the non-blocking bounded arms. The wire front-end
/// always clamps budgets to a finite value, so no reactor thread ever
/// waits.
///
/// [`Client::request`]: crate::store::Client::request
pub const UNBOUNDED_RETRIES: u32 = u32::MAX;

/// How a connection (or in-process session) identifies its progress tier.
///
/// On the wire this is the **handshake**: VIP service is keyed by the
/// credential's token, which the server maps to one admitted VIP port —
/// guests cannot occupy a VIP slot no matter how many connect, so a flood
/// of guests can never starve a VIP port. In process, the session's
/// [`ClientTicket`] is authoritative; the credential merely must not
/// *over-claim* (a guest ticket presenting a VIP credential is refused
/// with [`StoreError::GuestTier`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TierCredential {
    /// Claims a bounded-wait-free VIP port, keyed by `token`.
    Vip {
        /// The credential key: the server maps each accepted token to one
        /// admitted VIP port (connections sharing a token share the port).
        token: u64,
    },
    /// Claims only the obstruction-free shared guest tier (never refused).
    Guest,
}

impl TierCredential {
    /// The progress class this credential claims.
    pub fn class(&self) -> ProgressClass {
        match self {
            TierCredential::Vip { .. } => ProgressClass::Vip,
            TierCredential::Guest => ProgressClass::Guest,
        }
    }

    /// The credential a session's own ticket vouches for.
    pub fn for_ticket(ticket: &ClientTicket) -> TierCredential {
        match ticket.class() {
            ProgressClass::Vip => TierCredential::Vip { token: ticket.id() },
            ProgressClass::Guest => TierCredential::Guest,
        }
    }
}

/// The unified request envelope: a batch of operations plus the service
/// terms they are executed under. One `Request` is one wire frame and one
/// [`Client::request`](crate::store::Client::request) call — the two paths
/// share this struct verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Operations, answered in invocation order.
    pub ops: Vec<StoreOp>,
    /// The claimed progress tier (see [`TierCredential`]).
    pub credential: TierCredential,
    /// WAL durability class the commit's effect frames carry.
    /// [`DurabilityClass::Sync`] additionally makes the response wait for
    /// the covering fsync — VIP-only, exactly as
    /// [`Client::execute_durable`](crate::store::Client::execute_durable).
    pub durability: DurabilityClass,
    /// Relative patience in milliseconds, measured from dispatch; `None`
    /// means no deadline. Enforced by the **bounded** arms (between `Moved`
    /// retries) and by the wire front-end (a request that out-waits its
    /// deadline in a backpressure queue is shed before dispatch); expiry
    /// surfaces as the typed [`StoreError::DeadlineExceeded`]. The legacy
    /// waiting arm (`retry_budget == UNBOUNDED_RETRIES`) bounds its waits
    /// with the store-wide `view_wait_timeout` instead.
    pub deadline_ms: Option<u32>,
    /// How many `Moved` re-plan rounds the request will pay for before the
    /// remaining operations come back
    /// [`StoreError::RetryBudgetExhausted`]. Finite budgets make the VIP
    /// arm *bounded* wait-free end to end — the budget is the a-priori
    /// step bound. [`UNBOUNDED_RETRIES`] selects the legacy waiting arm.
    pub retry_budget: u32,
}

impl Request {
    /// A guest-tier, group-durability request with unbounded retries — the
    /// legacy `execute` semantics. Chain the builder methods to tighten
    /// the terms.
    pub fn new(ops: Vec<StoreOp>) -> Request {
        Request {
            ops,
            credential: TierCredential::Guest,
            durability: DurabilityClass::Group,
            deadline_ms: None,
            retry_budget: UNBOUNDED_RETRIES,
        }
    }

    /// Sets the tier credential.
    pub fn credential(mut self, credential: TierCredential) -> Request {
        self.credential = credential;
        self
    }

    /// Sets the durability class.
    pub fn durability(mut self, durability: DurabilityClass) -> Request {
        self.durability = durability;
        self
    }

    /// Sets the relative deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u32) -> Request {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets a finite retry budget (routing the request through the
    /// non-blocking bounded arms).
    pub fn retry_budget(mut self, budget: u32) -> Request {
        self.retry_budget = budget;
        self
    }
}

/// The unified response envelope: one `Result` per requested operation,
/// in invocation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Per-operation outcomes.
    pub results: Vec<Result<StoreResp, StoreError>>,
}

impl Response {
    /// A response failing every one of `n` operations with `err`.
    pub fn fail_all(n: usize, err: StoreError) -> Response {
        Response { results: (0..n).map(|_| Err(err.clone())).collect() }
    }

    /// True when every operation succeeded.
    pub fn is_ok(&self) -> bool {
        self.results.iter().all(|r| r.is_ok())
    }

    /// Degrades the envelope back to the legacy `Vec<StoreResp>` shape the
    /// thin wrappers still expose: `Moved` and `Unavailable` errors map to
    /// their historical response variants; the envelope-only errors
    /// (`GuestTier`, `RetryBudgetExhausted`, `Corrupt`) degrade to
    /// [`StoreResp::Unavailable`] — the legacy vocabulary's closest
    /// "nothing applied / not acknowledged" shape.
    pub fn into_legacy(self) -> Vec<StoreResp> {
        self.results
            .into_iter()
            .map(|r| match r {
                Ok(resp) => resp,
                Err(StoreError::Moved { epoch }) => StoreResp::Moved { epoch },
                Err(StoreError::Unavailable { version }) => StoreResp::Unavailable { version },
                Err(_) => StoreResp::Unavailable { version: 0 },
            })
            .collect()
    }
}

/// The consolidated store error surface, with **stable wire
/// discriminants** (see [`StoreError::wire_discriminant`] and
/// `docs/WIRE.md`). `#[non_exhaustive]`: future variants may be added
/// without a breaking release; unknown discriminants received over the
/// wire fail closed in the codec.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The operation's shard split or merged between planning and commit;
    /// nothing was applied. `epoch` is the topology version the retry must
    /// plan against. Wire discriminant `1`.
    Moved {
        /// Minimum topology version a re-plan needs.
        epoch: u64,
    },
    /// The request claimed a service class its tier is not entitled to —
    /// a guest presenting a VIP credential, or requesting VIP-only
    /// synchronous durability. Wire discriminant `2`.
    GuestTier,
    /// The store's patience ran out: the request's `Moved` retry budget
    /// was spent, or the guest tier's backpressure shed it — the typed
    /// 429. Nothing beyond the reported operations was applied; try again
    /// later. (A passed *deadline* is the distinct
    /// [`StoreError::DeadlineExceeded`].) Wire discriminant `3`.
    RetryBudgetExhausted {
        /// The budget the request arrived with.
        budget: u32,
    },
    /// The store could not serve the operation: the re-planned topology
    /// never published (dead reconfiguration driver), or a required
    /// subsystem (e.g. a WAL for synchronous durability) is absent.
    /// Wire discriminant `4`.
    Unavailable {
        /// Topology version that failed to publish (0 when the failure is
        /// not topology-related).
        version: u64,
    },
    /// Data integrity failure: the covering durability flush failed
    /// ("applied but not durably acknowledged"), or a wire frame failed
    /// its checksum/structure checks. Wire discriminant `5`.
    Corrupt {
        /// Human-readable failure description.
        detail: String,
    },
    /// The request's deadline passed before the reported operations could
    /// be served: the wire front-end shed the frame before dispatch, or a
    /// `Moved` re-plan boundary found the deadline already behind it.
    /// Distinct from [`StoreError::RetryBudgetExhausted`] — budget may
    /// well remain; it is *time* that ran out, so re-sending with the
    /// same deadline is pointless. Wire discriminant `6`.
    DeadlineExceeded {
        /// The deadline budget the request carried, in milliseconds (as
        /// seen by the arm that expired it — the wire front-end debits
        /// queue wait before dispatch).
        deadline_ms: u32,
    },
}

impl StoreError {
    /// The stable one-byte wire discriminant (pinned by `docs/WIRE.md`
    /// and the codec tests; never renumber).
    pub fn wire_discriminant(&self) -> u8 {
        match self {
            StoreError::Moved { .. } => 1,
            StoreError::GuestTier => 2,
            StoreError::RetryBudgetExhausted { .. } => 3,
            StoreError::Unavailable { .. } => 4,
            StoreError::Corrupt { .. } => 5,
            StoreError::DeadlineExceeded { .. } => 6,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Moved { epoch } => {
                write!(f, "moved: re-plan against topology version {epoch}")
            }
            StoreError::GuestTier => {
                write!(f, "guest tier: the claimed service class is VIP-only")
            }
            StoreError::RetryBudgetExhausted { budget } => {
                write!(f, "retry budget exhausted (budget {budget}): try again later")
            }
            StoreError::Unavailable { version } => {
                write!(f, "unavailable (topology version {version} never published)")
            }
            StoreError::Corrupt { detail } => write!(f, "corrupt: {detail}"),
            StoreError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline exceeded ({deadline_ms} ms): the request out-waited itself")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_discriminants_are_pinned() {
        // The wire contract: these numbers may never change.
        assert_eq!(StoreError::Moved { epoch: 3 }.wire_discriminant(), 1);
        assert_eq!(StoreError::GuestTier.wire_discriminant(), 2);
        assert_eq!(StoreError::RetryBudgetExhausted { budget: 8 }.wire_discriminant(), 3);
        assert_eq!(StoreError::Unavailable { version: 9 }.wire_discriminant(), 4);
        assert_eq!(StoreError::Corrupt { detail: "x".into() }.wire_discriminant(), 5);
        assert_eq!(StoreError::DeadlineExceeded { deadline_ms: 50 }.wire_discriminant(), 6);
    }

    #[test]
    fn legacy_degradation_keeps_moved_and_unavailable() {
        let resp = Response {
            results: vec![
                Ok(StoreResp::Value(Some(7))),
                Err(StoreError::Moved { epoch: 2 }),
                Err(StoreError::Unavailable { version: 5 }),
                Err(StoreError::GuestTier),
            ],
        };
        assert_eq!(
            resp.into_legacy(),
            vec![
                StoreResp::Value(Some(7)),
                StoreResp::Moved { epoch: 2 },
                StoreResp::Unavailable { version: 5 },
                StoreResp::Unavailable { version: 0 },
            ]
        );
    }

    #[test]
    fn request_builder_defaults_are_legacy_semantics() {
        let req = Request::new(vec![StoreOp::Get("k".into())]);
        assert_eq!(req.credential, TierCredential::Guest);
        assert_eq!(req.retry_budget, UNBOUNDED_RETRIES);
        assert!(req.deadline_ms.is_none());
        let req = req.retry_budget(4).deadline_ms(10);
        assert_eq!(req.retry_budget, 4);
        assert_eq!(req.deadline_ms, Some(10));
    }
}
