//! The automatic elasticity policy: when to split a hot shard and when to
//! merge a cold child back, decided from wait-free stats with hysteresis.
//!
//! The driver is deliberately **passive**: it owns no thread. The store's
//! commit path ticks it every [`ElasticityPolicy::evaluate_every`] commits
//! (see [`Store::commit`](crate::store::Store)); an evaluation reads the
//! per-shard commit deltas since the previous evaluation out of the
//! wait-free [`snapshot_stats`](crate::store::Store::snapshot_stats)
//! digests and produces an [`ElasticDecision`]. Ticks that lose the
//! engine's try-lock are simply skipped, and only **guest-tier** commits
//! ever carry a tick past the counter — applying a decision blocks on
//! guest-tier ports and installs lock-free (not wait-free) reconfig
//! cells, work a VIP thread must never do — so elasticity is advisory
//! and never adds blocking to a wait-free commit.
//!
//! Thrash control is two-fold, mirroring every control-loop textbook:
//!
//! * **hysteresis** — the split trigger ([`ElasticityPolicy::split_share`],
//!   a shard's fraction of the evaluation window's total commits) and the
//!   merge trigger ([`ElasticityPolicy::merge_ratio`], a fraction of the
//!   fair share) are far apart, so a shard sitting near the fair share
//!   triggers neither; and
//! * **a cool-down epoch** — after any reconfiguration the engine holds
//!   for [`ElasticityPolicy::cooldown`] commits, so an oscillating load
//!   can force at most one reconfiguration per cool-down window (unit
//!   tested with a synthetic oscillating trace below).
//!
//! Merge candidates additionally have to be structurally eligible
//! ([`ShardTopology::check_merge`]): a live leaf that is the last live
//! child of its parent — the policy unwinds splits in reverse, a ratchet
//! that loosens the way it tightened.

use crate::router::ShardTopology;
use crate::store::ShardDigest;

/// Tuning knobs of the automatic split/merge driver.
///
/// The split trigger is deliberately a **fraction of the window's total
/// traffic**, not a multiple of the fair share: a fair-share baseline
/// (`total / live_shards`) shrinks as the topology grows, so any
/// concentrated-but-steady workload would look ever more "skewed" after
/// each split and the driver would run away to `max_shards`. A
/// total-share trigger is scale-free — a shard that draws half of *all*
/// traffic is worth splitting whether the store has 4 shards or 40, and a
/// shard that draws a third of it never is.
///
/// The merge trigger *is* fair-share-relative (a cold child is one doing
/// far less than its fair part), which is equally scale-free in the other
/// direction: under uniform load every shard sits at exactly the fair
/// share, so nothing merges no matter how many shards there are.
///
/// One honest limitation: hotness below the router's resolution — a
/// single melted **key** — cannot be relieved by splitting (the hot key
/// lands wholly on one side). The cool-down and `max_shards` bound the
/// damage; fixing it takes key-level load tracking, which the wait-free
/// digests deliberately do not do.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ElasticityPolicy {
    /// Commits between policy evaluations (the sampling cadence).
    pub evaluate_every: u64,
    /// Minimum commits a decision window must contain. Evaluations whose
    /// accumulated window is smaller just keep accumulating — deciding on
    /// a short window mistakes one thread's scheduler burst (which lands
    /// on one shard) for key-space skew. Size it to several times the
    /// longest plausible per-client burst.
    pub min_window: u64,
    /// Split the hottest live shard when its share of the window's total
    /// commits exceeds this fraction (the **up** threshold). Default 0.5:
    /// one shard carrying half the store's traffic melts.
    pub split_share: f64,
    /// Merge an eligible child when its window delta falls below
    /// `merge_ratio ×` the fair share (`total / live_shards`) — the
    /// **down** threshold. Keep well below 1.0; the distance between the
    /// two thresholds is the hysteresis band.
    pub merge_ratio: f64,
    /// Commits to hold after any reconfiguration (the cool-down epoch):
    /// at most one split or merge per this many commits.
    pub cooldown: u64,
    /// Never grow beyond this many shard slots (live + retired).
    pub max_shards: usize,
    /// Never merge below this many live shards.
    pub min_live_shards: usize,
}

impl Default for ElasticityPolicy {
    fn default() -> Self {
        ElasticityPolicy {
            evaluate_every: 64,
            min_window: 1024,
            split_share: 0.5,
            merge_ratio: 0.25,
            cooldown: 512,
            max_shards: 64,
            min_live_shards: 1,
        }
    }
}

/// What one policy evaluation decided.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ElasticDecision {
    /// Split this (hottest) shard.
    Split(usize),
    /// Merge this (cold, structurally eligible) child into its parent.
    Merge(usize),
    /// Do nothing this window.
    Hold,
}

/// Running totals of the driver, for dashboards and assertions.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ElasticReport {
    /// Policy evaluations performed.
    pub evaluations: u64,
    /// Splits the policy decided (and the store applied).
    pub splits: u64,
    /// Merges the policy decided (and the store applied).
    pub merges: u64,
    /// Evaluations suppressed by the cool-down epoch.
    pub cooled_down: u64,
}

/// The decision engine: policy + the observation baseline it diffs
/// against. Pure bookkeeping — it never touches a store, which is what
/// makes the hysteresis unit-testable with synthetic traces.
#[derive(Clone, Debug)]
pub struct ElasticEngine {
    policy: ElasticityPolicy,
    /// Per-shard commit digests at the previous evaluation (grows as the
    /// topology does; new shards baseline at 0).
    last_commits: Vec<u64>,
    /// No reconfiguration before this total-commit count.
    hold_until: u64,
    report: ElasticReport,
}

impl ElasticEngine {
    /// An engine for `policy` with an empty observation baseline.
    pub fn new(policy: ElasticityPolicy) -> Self {
        ElasticEngine {
            policy,
            last_commits: Vec::new(),
            hold_until: 0,
            report: ElasticReport::default(),
        }
    }

    /// The engine's policy.
    pub fn policy(&self) -> &ElasticityPolicy {
        &self.policy
    }

    /// The running totals.
    pub fn report(&self) -> ElasticReport {
        self.report
    }

    /// Rebases the observation window: the next deltas are measured from
    /// the digests as they are now.
    fn rebase(&mut self, stats: &[ShardDigest]) {
        for (slot, d) in self.last_commits.iter_mut().zip(stats) {
            *slot = d.commits;
        }
    }

    /// One policy evaluation at total commit count `total`, over the
    /// current per-shard digests and topology. The observation window
    /// accumulates across evaluations until it holds at least
    /// [`ElasticityPolicy::min_window`] commits; the caller applies the
    /// decision and, on success, calls
    /// [`ElasticEngine::note_reconfigured`].
    pub fn evaluate(
        &mut self,
        total: u64,
        stats: &[ShardDigest],
        topology: &ShardTopology,
    ) -> ElasticDecision {
        self.report.evaluations += 1;
        // Window deltas accumulated since the last rebase (new shards
        // start at 0, so a mid-window newborn counts its whole digest —
        // correct: those commits happened inside this window).
        self.last_commits.resize(stats.len(), 0);
        let deltas: Vec<u64> = stats
            .iter()
            .zip(&self.last_commits)
            .map(|(d, &last)| d.commits.saturating_sub(last))
            .collect();
        if total < self.hold_until {
            // Discard the cooldown window's traffic: the reconfiguration
            // just changed what a balanced window even looks like.
            self.rebase(stats);
            self.report.cooled_down += 1;
            return ElasticDecision::Hold;
        }
        let live = topology.live_shards();
        let window: u64 =
            (0..stats.len()).filter(|&s| topology.is_live(s)).map(|s| deltas[s]).sum();
        if live == 0 || window < self.policy.min_window.max(1) {
            // Too small to distinguish key-space skew from one thread's
            // scheduler burst: keep accumulating, decide later.
            return ElasticDecision::Hold;
        }
        self.rebase(stats);
        let fair = window as f64 / live as f64;

        // Split half: the hottest live shard vs its share of the whole
        // window (scale-free — see the policy docs for why not fair-share).
        if topology.shards() < self.policy.max_shards {
            if let Some((hot, &d)) = deltas
                .iter()
                .enumerate()
                .filter(|&(s, _)| topology.is_live(s))
                .max_by_key(|&(s, &d)| (d, s))
            {
                if d as f64 > self.policy.split_share * window as f64 {
                    return ElasticDecision::Split(hot);
                }
            }
        }

        // Merge half: the coldest structurally eligible child vs the fair
        // share. Eligibility (leaf + last live child) unwinds splits in
        // reverse; a cold shard that is not yet eligible waits its turn.
        if live > self.policy.min_live_shards {
            let candidate = (0..topology.shards())
                .filter(|&s| topology.check_merge(s).is_ok())
                .min_by_key(|&s| (deltas[s], s));
            if let Some(cold) = candidate {
                if (deltas[cold] as f64) < self.policy.merge_ratio * fair {
                    return ElasticDecision::Merge(cold);
                }
            }
        }
        ElasticDecision::Hold
    }

    /// Records that the store applied `decision`: bumps the counters and
    /// opens a fresh cool-down window starting at `total`.
    pub fn note_reconfigured(&mut self, decision: ElasticDecision, total: u64) {
        match decision {
            ElasticDecision::Split(_) => self.report.splits += 1,
            ElasticDecision::Merge(_) => self.report.merges += 1,
            ElasticDecision::Hold => return,
        }
        self.hold_until = total + self.policy.cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digests(commits: &[u64]) -> Vec<ShardDigest> {
        commits.iter().map(|&c| ShardDigest { commits: c, entries: 0 }).collect()
    }

    fn policy() -> ElasticityPolicy {
        // Tiny min_window: these tests feed synthetic ~100-commit windows
        // and probe the thresholds, not the accumulation.
        ElasticityPolicy {
            evaluate_every: 16,
            cooldown: 100,
            min_window: 1,
            ..ElasticityPolicy::default()
        }
    }

    #[test]
    fn skewed_window_splits_the_hottest_shard() {
        let topo = ShardTopology::fresh(4);
        let mut engine = ElasticEngine::new(policy());
        // Warm-up evaluation establishes the baseline.
        assert_eq!(engine.evaluate(0, &digests(&[0, 0, 0, 0]), &topo), ElasticDecision::Hold);
        // 97 of 100 commits on shard 2: 97% of the window > the 50% trigger.
        assert_eq!(
            engine.evaluate(100, &digests(&[1, 1, 97, 1]), &topo),
            ElasticDecision::Split(2)
        );
    }

    #[test]
    fn balanced_window_holds() {
        let topo = ShardTopology::fresh(4);
        let mut engine = ElasticEngine::new(policy());
        engine.evaluate(0, &digests(&[0, 0, 0, 0]), &topo);
        assert_eq!(
            engine.evaluate(100, &digests(&[25, 26, 24, 25]), &topo),
            ElasticDecision::Hold,
            "uniform load must not reconfigure"
        );
        assert_eq!(engine.report().splits, 0);
    }

    #[test]
    fn cold_eligible_child_merges() {
        let (topo, child) = ShardTopology::fresh(4).split(0);
        let mut engine = ElasticEngine::new(policy());
        engine.evaluate(0, &digests(&[0, 0, 0, 0, 0]), &topo);
        // Load on everything except the child (and it is the only
        // structurally eligible candidate).
        assert_eq!(
            engine.evaluate(100, &digests(&[25, 25, 25, 25, 0]), &topo),
            ElasticDecision::Merge(child)
        );
    }

    #[test]
    fn cold_root_never_merges() {
        let topo = ShardTopology::fresh(4);
        let mut engine = ElasticEngine::new(policy());
        engine.evaluate(0, &digests(&[0, 0, 0, 0]), &topo);
        // Shard 3 is stone cold but a root: hold. (Not a split either —
        // the hottest shard draws only 34% of the window.)
        assert_eq!(engine.evaluate(100, &digests(&[33, 33, 34, 0]), &topo), ElasticDecision::Hold);
    }

    #[test]
    fn min_live_shards_floors_the_merge() {
        let (topo, _) = ShardTopology::fresh(1).split(0);
        let mut engine = ElasticEngine::new(ElasticityPolicy {
            min_live_shards: 2,
            max_shards: 2, // the hot parent is at 100% share; cap its split
            ..policy()
        });
        engine.evaluate(0, &digests(&[0, 0]), &topo);
        assert_eq!(
            engine.evaluate(100, &digests(&[100, 0]), &topo),
            ElasticDecision::Hold,
            "the live-shard floor wins over the cold child"
        );
    }

    #[test]
    fn max_shards_caps_the_split() {
        let topo = ShardTopology::fresh(4);
        let mut engine = ElasticEngine::new(ElasticityPolicy { max_shards: 4, ..policy() });
        engine.evaluate(0, &digests(&[0, 0, 0, 0]), &topo);
        assert_eq!(
            engine.evaluate(100, &digests(&[97, 1, 1, 1]), &topo),
            ElasticDecision::Hold,
            "at the slot cap even a melted shard holds"
        );
    }

    #[test]
    fn cooldown_suppresses_and_then_releases() {
        let topo = ShardTopology::fresh(4);
        let mut engine = ElasticEngine::new(policy()); // cooldown 100
        engine.evaluate(0, &digests(&[0, 0, 0, 0]), &topo);
        let d = engine.evaluate(16, &digests(&[16, 0, 0, 0]), &topo);
        assert_eq!(d, ElasticDecision::Split(0));
        engine.note_reconfigured(d, 16);
        // Inside the window: suppressed despite identical skew.
        assert_eq!(engine.evaluate(100, &digests(&[100, 0, 0, 0]), &topo), ElasticDecision::Hold);
        assert_eq!(engine.report().cooled_down, 1);
        // Past the window: free to act again.
        assert_eq!(
            engine.evaluate(116, &digests(&[200, 0, 0, 0]), &topo),
            ElasticDecision::Split(0)
        );
    }

    /// The headline hysteresis guarantee: a synthetic oscillating load
    /// (hot ↔ cold every evaluation) can force at most one
    /// reconfiguration per cool-down window — the driver never thrashes.
    #[test]
    fn oscillating_load_reconfigures_at_most_once_per_cooldown_window() {
        let cooldown = 200u64;
        let step = 20u64; // commits per evaluation window
        let mut engine = ElasticEngine::new(ElasticityPolicy {
            evaluate_every: step,
            cooldown,
            min_live_shards: 2,
            min_window: 1,
            ..ElasticityPolicy::default()
        });
        let mut topo = ShardTopology::fresh(4);
        let mut commits = vec![0u64; 4];
        let mut reconfig_times: Vec<u64> = Vec::new();
        let mut total = 0u64;
        for round in 0..200 {
            total += step;
            commits.resize(topo.shards(), 0);
            if round % 2 == 0 {
                // Hot phase: everything lands on shard 0.
                commits[0] += step;
            } else {
                // Cold phase: everything lands away from shard 0's subtree.
                commits[1] += step / 2;
                commits[2] += step - step / 2;
            }
            let d = engine.evaluate(total, &digests(&commits), &topo);
            match d {
                ElasticDecision::Split(s) => {
                    let (bumped, _) = topo.split(s);
                    topo = bumped;
                    engine.note_reconfigured(d, total);
                    reconfig_times.push(total);
                }
                ElasticDecision::Merge(s) => {
                    let (bumped, _) = topo.merge(s).expect("engine only proposes eligible merges");
                    topo = bumped;
                    engine.note_reconfigured(d, total);
                    reconfig_times.push(total);
                }
                ElasticDecision::Hold => {}
            }
        }
        assert!(!reconfig_times.is_empty(), "the oscillation must trigger at least one reconfig");
        for pair in reconfig_times.windows(2) {
            assert!(
                pair[1] - pair[0] >= cooldown,
                "reconfigs at {} and {} violate the {}-commit cool-down",
                pair[0],
                pair[1],
                cooldown
            );
        }
        let report = engine.report();
        assert_eq!(report.splits + report.merges, reconfig_times.len() as u64);
        assert!(report.cooled_down > 0, "the oscillation must actually hit the cool-down");
        // Convergence, not runaway: the swings are bounded (at most one
        // reconfig per window), so the topology stays small.
        assert!(topo.shards() <= 4 + reconfig_times.len());
    }

    /// The burst-resistance property: short windows accumulate instead of
    /// deciding, so a scheduler burst that lands one client's stream on
    /// one shard does not read as key-space skew. Three consecutive
    /// 100-commit bursts on three *different* shards must yield one
    /// balanced 300-commit window — and Hold — where deciding per burst
    /// would have split three times.
    #[test]
    fn short_bursts_accumulate_instead_of_splitting() {
        let topo = ShardTopology::fresh(3);
        let mut engine = ElasticEngine::new(ElasticityPolicy { min_window: 300, ..policy() });
        engine.evaluate(0, &digests(&[0, 0, 0]), &topo);
        // Burst 1: all on shard 0. Too small to decide.
        assert_eq!(engine.evaluate(100, &digests(&[100, 0, 0]), &topo), ElasticDecision::Hold);
        // Burst 2: all on shard 1. Still accumulating.
        assert_eq!(engine.evaluate(200, &digests(&[100, 100, 0]), &topo), ElasticDecision::Hold);
        // Burst 3 completes a 300-commit window that is perfectly
        // balanced: Hold, with the window consumed.
        assert_eq!(engine.evaluate(300, &digests(&[100, 100, 100]), &topo), ElasticDecision::Hold);
        // A genuinely skewed full-size window still splits.
        assert_eq!(
            engine.evaluate(600, &digests(&[400, 100, 100]), &topo),
            ElasticDecision::Split(0)
        );
    }

    #[test]
    fn new_shards_baseline_at_zero_without_phantom_deltas() {
        let topo = ShardTopology::fresh(3);
        let mut engine = ElasticEngine::new(policy());
        engine.evaluate(0, &digests(&[0, 0, 0]), &topo);
        let (grown, _) = topo.split(0);
        // The child appears mid-flight with 10 absolute commits; its whole
        // digest counts as this window's delta — which is correct, those
        // commits did happen since the last evaluation. The window is
        // balanced enough to hold (and the child is too warm to merge).
        let d = engine.evaluate(100, &digests(&[30, 30, 30, 10]), &grown);
        assert_eq!(d, ElasticDecision::Hold, "balanced across the grown topology");
        // And the next window diffs against the recorded baseline: shard 0
        // alone draws 100 of 100 commits (4× the fair share of 25).
        assert_eq!(
            engine.evaluate(200, &digests(&[130, 30, 30, 10]), &grown),
            ElasticDecision::Split(0)
        );
    }
}
