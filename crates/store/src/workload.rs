//! Named stress scenarios shared by the benches, the stress example, and
//! tests: who the clients are (the VIP/guest mix) and which keys they hit.
//!
//! Everything is deterministic (SplitMix64 over `(client, step)`), so two
//! drivers replaying the same scenario issue the same operation stream.

use crate::admission::ProgressClass;
use crate::ops::StoreOp;
use crate::router::splitmix64;

/// A named workload shape.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Scenario {
    /// Every client spreads uniform random keys: the scaling baseline.
    Uniform,
    /// Half of all traffic hits one hot key (a zipf-ish skew): router and
    /// per-shard contention stress.
    HotKey,
    /// As many clients as possible are VIPs: the wait-free tier under
    /// self-contention.
    VipHeavy,
    /// Guests only, all CAS-hammering one key: the obstruction-free tier's
    /// worst case (and the VIP dashboard's chance to shine).
    GuestContention,
}

impl Scenario {
    /// All scenarios, in presentation order.
    pub const ALL: [Scenario; 4] =
        [Scenario::Uniform, Scenario::HotKey, Scenario::VipHeavy, Scenario::GuestContention];

    /// The scenario's stable name (bench ids, report keys).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Uniform => "uniform",
            Scenario::HotKey => "hot-key",
            Scenario::VipHeavy => "vip-heavy",
            Scenario::GuestContention => "guest-contention",
        }
    }

    /// How many of `total` clients are VIPs vs guests, given the store's
    /// VIP capacity: `(vips, guests)`.
    pub fn client_mix(self, total: usize, vip_capacity: usize) -> (usize, usize) {
        let vips = match self {
            Scenario::Uniform | Scenario::HotKey => vip_capacity.min(total / 4).max(1).min(total),
            Scenario::VipHeavy => vip_capacity.min(total),
            Scenario::GuestContention => 0,
        }
        .min(vip_capacity);
        (vips, total - vips)
    }

    /// The progress class of client `i` under this scenario's mix.
    pub fn class_of(self, i: usize, total: usize, vip_capacity: usize) -> ProgressClass {
        let (vips, _) = self.client_mix(total, vip_capacity);
        if i < vips {
            ProgressClass::Vip
        } else {
            ProgressClass::Guest
        }
    }

    /// The `step`-th operation of client `client`, over a key space of
    /// `keys` keys. Deterministic.
    pub fn op(self, client: usize, step: usize, keys: usize) -> StoreOp {
        let h = splitmix64(((client as u64) << 32) ^ step as u64);
        let keys = keys.max(1) as u64;
        match self {
            Scenario::Uniform | Scenario::VipHeavy => {
                let key = key_name(h % keys);
                match h >> 60 {
                    0..=5 => StoreOp::Put(key, h & 0xffff),
                    6..=13 => StoreOp::Get(key),
                    _ => StoreOp::Remove(key),
                }
            }
            Scenario::HotKey => {
                // Half of all traffic lands on key 0.
                let key = if h & 1 == 0 { key_name(0) } else { key_name(h % keys) };
                match h >> 61 {
                    0..=2 => StoreOp::Put(key, h & 0xffff),
                    3..=6 => StoreOp::Get(key),
                    _ => StoreOp::Cas { key, expect: None, new: h & 0xffff },
                }
            }
            Scenario::GuestContention => {
                let key = key_name(0);
                if h & 1 == 0 {
                    StoreOp::Cas { key, expect: None, new: h & 0xffff }
                } else {
                    StoreOp::Get(key)
                }
            }
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a standalone two-port shard log preloaded with `cells`
/// single-`Put` batches and, optionally, a trailing checkpoint — the
/// fresh-replica replay-cost harness shared by the criterion bench
/// (`store/recovery` series) and the stress example, so the measured
/// shard-log setup cannot drift between the two.
///
/// Port 0 is consumed by the loader; port 1 is left free for the fresh
/// replica under measurement (take it with `owned_handle(1)` and read its
/// `replay_steps()` after one operation).
pub fn preloaded_shard_log(
    cells: usize,
    checkpointed: bool,
) -> std::sync::Arc<crate::store::ShardLog> {
    use apc_core::liveness::Liveness;
    use apc_universal::{AsymmetricFactory, Universal};

    let log = std::sync::Arc::new(Universal::new(
        crate::ops::ShardSpec::default(),
        AsymmetricFactory::new(Liveness::new_first_n(2, 2)),
        2,
    ));
    let mut loader = log.owned_handle(0).expect("fresh log, port 0 free");
    for i in 0..cells {
        loader.apply(crate::ops::ShardCmd::Batch(crate::ops::Batch::new(
            0,
            vec![StoreOp::Put(key_name(i as u64), i as u64)],
        )));
    }
    if checkpointed {
        loader.checkpoint();
    }
    log
}

/// The first `count` keys of the `key/NNNN` namespace that the given
/// topology routes to `shard` — how the hot-shard drivers (the
/// `hot-key-split` bench scenario and the stress example) aim a workload at
/// one shard to melt it.
pub fn keys_on_shard(
    topology: &crate::router::ShardTopology,
    shard: usize,
    count: usize,
) -> Vec<String> {
    // An out-of-range or retired shard would make the unbounded scan below
    // spin forever (nothing routes to a tombstone); fail loudly instead.
    assert!(
        shard < topology.shards(),
        "no shard {shard} in a {}-shard topology",
        topology.shards()
    );
    assert!(topology.is_live(shard), "shard {shard} is retired; no key routes to a tombstone");
    (0..).map(key_name).filter(|k| topology.shard_of(k) == shard).take(count).collect()
}

fn key_name(i: u64) -> String {
    format!("key/{i:04}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_deterministic() {
        for s in Scenario::ALL {
            assert_eq!(s.op(3, 17, 64), s.op(3, 17, 64), "{s}");
        }
    }

    #[test]
    fn mixes_respect_capacity_and_total() {
        for s in Scenario::ALL {
            for total in [1usize, 4, 8] {
                for cap in [0usize, 1, 2, 8] {
                    let (v, g) = s.client_mix(total, cap);
                    assert!(v <= cap, "{s}: {v} VIPs > capacity {cap}");
                    assert_eq!(v + g, total, "{s}: mix must cover all clients");
                }
            }
        }
        assert_eq!(Scenario::GuestContention.client_mix(6, 2), (0, 6));
        assert_eq!(Scenario::VipHeavy.client_mix(6, 2), (2, 4));
    }

    #[test]
    fn class_of_is_consistent_with_mix() {
        let (v, _) = Scenario::Uniform.client_mix(8, 2);
        for i in 0..8 {
            let expected = if i < v { ProgressClass::Vip } else { ProgressClass::Guest };
            assert_eq!(Scenario::Uniform.class_of(i, 8, 2), expected);
        }
    }

    #[test]
    fn hot_key_skews_to_key_zero() {
        let hot = key_name(0);
        let hits = (0..400)
            .filter(|&i| match Scenario::HotKey.op(0, i, 64) {
                StoreOp::Put(k, _) | StoreOp::Get(k) | StoreOp::Remove(k) => k == hot,
                StoreOp::Cas { key, .. } => key == hot,
                StoreOp::Scan { .. } => false,
            })
            .count();
        assert!(hits > 150, "hot key must draw ~half the traffic, got {hits}/400");
    }

    #[test]
    fn preloaded_shard_log_exposes_the_replay_cost_difference() {
        let cells = 32u64;
        let without = super::preloaded_shard_log(cells as usize, false);
        let with = super::preloaded_shard_log(cells as usize, true);
        let mut fresh_without = without.owned_handle(1).unwrap();
        let mut fresh_with = with.owned_handle(1).unwrap();
        let probe = crate::ops::ShardCmd::Batch(crate::ops::Batch::new(
            0,
            vec![StoreOp::Get("key/0000".into())],
        ));
        fresh_without.apply(probe.clone());
        fresh_with.apply(probe);
        assert!(fresh_without.replay_steps() > cells, "no checkpoint = O(history)");
        assert!(fresh_with.replay_steps() <= 2, "checkpoint = O(delta)");
        assert_eq!(
            fresh_without.local_state(),
            fresh_with.local_state(),
            "both replicas converge on the same state"
        );
    }

    #[test]
    fn guest_contention_only_touches_the_hot_key() {
        for step in 0..50 {
            match Scenario::GuestContention.op(1, step, 64) {
                StoreOp::Cas { key, .. } | StoreOp::Get(key) => assert_eq!(key, key_name(0)),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }
}
