//! The shard router: key placement and batch planning.
//!
//! Keys hash across `S` independent shards (FNV-1a over the key bytes), so
//! each shard is its own universal object and shards make progress — and
//! scale — independently. [`BatchPlan`] turns one client batch into at most
//! one sub-batch per shard (the batching contract of the operation layer)
//! and remembers how to reassemble responses in invocation order, merging
//! broadcast scans across shards.

use crate::ops::{Key, StoreOp, StoreResp};

/// FNV-1a 64-bit: key placement here, frame checksums in
/// [`persist`](crate::persist) — one implementation for both.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Routes keys to shards by hashing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` (FNV-1a of the key bytes, mod `S`).
    pub fn shard_of(&self, key: &str) -> usize {
        (fnv1a64(key.as_bytes()) % self.shards as u64) as usize
    }

    /// Plans a batch: splits the ops into per-shard sub-batches, broadcast
    /// ops (scans) going to every shard.
    pub fn plan(&self, ops: Vec<StoreOp>) -> BatchPlan {
        let mut per_shard: Vec<Vec<StoreOp>> = vec![Vec::new(); self.shards];
        let mut slots = Vec::with_capacity(ops.len());
        for op in ops {
            match op.routing_key() {
                Some(key) => {
                    let shard = self.shard_of(key);
                    slots.push(RespSlot::Single { shard, index: per_shard[shard].len() });
                    per_shard[shard].push(op);
                }
                None => {
                    let indices: Vec<usize> =
                        per_shard.iter().map(Vec::len).collect();
                    for sub in per_shard.iter_mut() {
                        sub.push(op.clone());
                    }
                    slots.push(RespSlot::Broadcast { indices });
                }
            }
        }
        BatchPlan { per_shard, slots }
    }
}

/// Where one op's response comes from after the per-shard commits.
#[derive(Clone, PartialEq, Eq, Debug)]
enum RespSlot {
    /// The op went to a single shard, at `index` within its sub-batch.
    Single {
        /// The owning shard.
        shard: usize,
        /// Index within that shard's sub-batch.
        index: usize,
    },
    /// The op was broadcast; `indices[s]` is its index in shard `s`'s
    /// sub-batch.
    Broadcast {
        /// Per-shard sub-batch indices.
        indices: Vec<usize>,
    },
}

/// The result of [`ShardRouter::plan`]: per-shard sub-batches plus the
/// recipe for reassembling responses in the original invocation order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchPlan {
    per_shard: Vec<Vec<StoreOp>>,
    slots: Vec<RespSlot>,
}

impl BatchPlan {
    /// The sub-batch destined for shard `s` (empty if the shard is idle).
    pub fn sub_batch(&self, s: usize) -> &[StoreOp] {
        &self.per_shard[s]
    }

    /// Shards with at least one op, in index order.
    pub fn active_shards(&self) -> impl Iterator<Item = usize> + '_ {
        self.per_shard
            .iter()
            .enumerate()
            .filter(|(_, sub)| !sub.is_empty())
            .map(|(s, _)| s)
    }

    /// Takes ownership of the per-shard sub-batches (index = shard).
    pub fn into_sub_batches(self) -> (Vec<Vec<StoreOp>>, BatchReassembly) {
        (self.per_shard, BatchReassembly { slots: self.slots })
    }
}

/// Reassembles per-shard responses into invocation order; the second half
/// of a [`BatchPlan`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchReassembly {
    slots: Vec<RespSlot>,
}

impl BatchReassembly {
    /// Merges `per_shard[s]` (responses of shard `s`'s sub-batch, in
    /// sub-batch order) back into one response vector in invocation order.
    /// Broadcast scans are merged across shards into key order.
    ///
    /// # Panics
    ///
    /// Panics if the response shapes do not match the plan (a store bug).
    pub fn reassemble(&self, per_shard: Vec<Vec<StoreResp>>) -> Vec<StoreResp> {
        self.slots
            .iter()
            .map(|slot| match slot {
                RespSlot::Single { shard, index } => per_shard[*shard][*index].clone(),
                RespSlot::Broadcast { indices } => {
                    let mut merged: Vec<(Key, u64)> = Vec::new();
                    for (s, &i) in indices.iter().enumerate() {
                        match &per_shard[s][i] {
                            StoreResp::Entries(entries) => merged.extend(entries.iter().cloned()),
                            other => panic!("broadcast slot returned {other:?}"),
                        }
                    }
                    merged.sort_by(|a, b| a.0.cmp(&b.0));
                    StoreResp::Entries(merged)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_in_range() {
        let r = ShardRouter::new(4);
        for key in ["", "a", "alpha", "zebra", "key/with/path"] {
            let s = r.shard_of(key);
            assert!(s < 4);
            assert_eq!(s, r.shard_of(key), "stable placement for {key:?}");
        }
        // One shard routes everything to 0.
        let r1 = ShardRouter::new(1);
        assert_eq!(r1.shard_of("anything"), 0);
    }

    #[test]
    fn hashing_spreads_keys() {
        let r = ShardRouter::new(8);
        let mut seen = [false; 8];
        for i in 0..256 {
            seen[r.shard_of(&format!("key-{i}"))] = true;
        }
        assert!(seen.iter().all(|&b| b), "256 keys must touch all 8 shards");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    fn plan_routes_and_reassembles_in_order() {
        let r = ShardRouter::new(3);
        let ops = vec![
            StoreOp::Put("a".into(), 1),
            StoreOp::Put("b".into(), 2),
            StoreOp::Get("a".into()),
        ];
        let plan = r.plan(ops.clone());
        let (subs, reassembly) = plan.into_sub_batches();
        // Apply each sub-batch against a scratch state to fake shard commits.
        let mut per_shard = Vec::new();
        for sub in &subs {
            let mut state = crate::ops::ShardState::new();
            per_shard
                .push(sub.iter().map(|op| crate::ops::apply_op(&mut state, op)).collect());
        }
        let resps = reassembly.reassemble(per_shard);
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0], StoreResp::Value(None));
        assert_eq!(resps[1], StoreResp::Value(None));
        assert_eq!(resps[2], StoreResp::Value(Some(1)), "get sees the same-shard put");
    }

    #[test]
    fn scans_broadcast_to_every_shard_and_merge_sorted() {
        let r = ShardRouter::new(4);
        let mut ops: Vec<StoreOp> =
            (0..16).map(|i| StoreOp::Put(format!("k{i:02}"), i)).collect();
        ops.push(StoreOp::Scan { from: "k00".into(), to: "k99".into() });
        let plan = r.plan(ops);
        for s in 0..4 {
            assert!(
                matches!(plan.sub_batch(s).last(), Some(StoreOp::Scan { .. })),
                "scan must reach shard {s}"
            );
        }
        let (subs, reassembly) = plan.into_sub_batches();
        let mut per_shard = Vec::new();
        for sub in &subs {
            let mut state = crate::ops::ShardState::new();
            per_shard
                .push(sub.iter().map(|op| crate::ops::apply_op(&mut state, op)).collect());
        }
        let resps = reassembly.reassemble(per_shard);
        match resps.last().unwrap() {
            StoreResp::Entries(entries) => {
                assert_eq!(entries.len(), 16, "scan sees every key across shards");
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                assert_eq!(keys, sorted, "merged scan is in key order");
            }
            other => panic!("scan returned {other:?}"),
        }
    }

    #[test]
    fn active_shards_skips_idle_ones() {
        let r = ShardRouter::new(4);
        let plan = r.plan(vec![StoreOp::Put("only".into(), 1)]);
        let active: Vec<usize> = plan.active_shards().collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0], r.shard_of("only"));
    }
}
