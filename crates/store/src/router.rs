//! The shard router: rendezvous-hashed key placement over a **versioned
//! shard topology**, and batch planning.
//!
//! Placement is hierarchical rendezvous (HRW) hashing. The initial `S`
//! shards are the *roots*: a key belongs to the root whose seeded hash of
//! the key is highest (the classic highest-random-weight rule, replacing
//! the old static `FNV % S` map). A **live split** of shard `p` attaches a
//! fresh child shard `c` under `p`: keys currently owned by `p` re-rendezvous
//! pairwise between `p` and `c` — `c` takes exactly the keys whose
//! `c`-seeded hash beats their `p`-seeded hash (≈ half). Children are
//! consulted in split order, so a key's owner is a deterministic walk down
//! the split tree.
//!
//! Two properties fall out of this structure:
//!
//! * **minimal disruption** — a split moves keys *only* from the split
//!   shard *only* to the new shard; every other placement in the store is
//!   untouched (property-tested in `tests/store_oracle.rs`);
//! * **local migration** — the split shard's sealed state alone contains
//!   every key that moves, so a live split migrates from one shard's
//!   checkpoint without touching the others.
//!
//! The topology is also **elastic downward**: [`ShardTopology::merge`]
//! retires a child back into its parent — the inverse bump. A retired node
//! stays in the tree as a **tombstone** (shard ids are dense and stable, so
//! retirement never renumbers anything) but the placement walk skips it,
//! which is exactly what makes the merge minimally disruptive too: a merge
//! moves keys *only* from the retired child *only* back to its parent.
//! That inverse-exactness holds because merges must unwind splits in
//! reverse: only a **live leaf that is the last live child of its parent**
//! may retire ([`MergeError`] names every way a candidate can fail). With
//! the last live child gone, the parent's descent considers exactly the
//! prefix of children it considered before that child's split, so
//! split-then-merge restores the parent's placement verbatim
//! (property-tested in `tests/store_oracle.rs`).
//!
//! Each topology carries a **version**, bumped by every split and every
//! merge. Batches are stamped with the version they were planned under
//! ([`Batch::planned_at`](crate::ops::Batch)); a shard whose state has seen
//! a later reconfiguration rejects stale sub-batches with
//! [`StoreResp::Moved`](crate::ops::StoreResp) at the linearization point,
//! and the client re-plans them against the published topology (see
//! [`Client::execute`](crate::store::Client::execute)).
//!
//! [`BatchPlan`] turns one client batch into at most one sub-batch per
//! **live** shard (the batching contract of the operation layer; tombstones
//! receive nothing) and remembers how to reassemble responses in invocation
//! order, merging broadcast scans across shards.

use std::fmt;

use crate::ops::{Key, StoreOp, StoreResp};

/// FNV-1a 64-bit: key digests here, frame checksums in
/// [`persist`](crate::persist) — one implementation for both.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The rendezvous score of `key` for a shard with the given `seed`: the
/// highest score in a candidate set owns the key.
///
/// The key digest is mixed with the seed through a SplitMix64 finalizer —
/// FNV alone has too little avalanche for *cross-seed ordering* to decorrelate
/// (a raw seeded FNV makes one seed win almost every key).
pub(crate) fn rendezvous_score(seed: u64, key: &str) -> u64 {
    splitmix64(seed ^ fnv1a64(key.as_bytes()))
}

/// One shard's entry in the topology tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TopoNode {
    /// The rendezvous seed identifying this shard.
    pub seed: u64,
    /// The shard this one was split off from (`None` for the initial
    /// roots).
    pub parent: Option<u32>,
    /// The topology version whose split created this shard (0 for roots).
    pub created_at: u64,
    /// The topology version whose merge retired this shard back into its
    /// parent (`None` while the shard is live). Retired nodes are
    /// tombstones: they keep their dense shard id but the placement walk
    /// skips them.
    pub retired_at: Option<u64>,
    /// Shards split off this one, in split order (live and retired).
    children: Vec<u32>,
}

impl TopoNode {
    /// Whether this shard is still part of the placement walk.
    pub fn is_live(&self) -> bool {
        self.retired_at.is_none()
    }
}

/// One persisted/transported topology node: everything
/// [`ShardTopology::from_nodes`] needs to rebuild a node, in shard-id
/// order. The inverse of reading [`ShardTopology::node`] fields.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TopoRecord {
    /// The node's rendezvous seed.
    pub seed: u64,
    /// The parent shard id (`None` for roots).
    pub parent: Option<u32>,
    /// The topology version whose split created the node.
    pub created_at: u64,
    /// The topology version whose merge retired the node (`None` = live).
    pub retired_at: Option<u64>,
}

/// Why a set of [`TopoRecord`]s does not rebuild into a valid topology.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// No nodes at all.
    Empty,
    /// A child's parent id is at or above its own (ids grow down every
    /// path, which also rules out cycles).
    ForwardParent,
    /// A node's creation version exceeds the topology version.
    CreatedBeyondVersion,
    /// A tombstone on a root: roots can never retire.
    RetiredRoot,
    /// A tombstone's retirement version exceeds the topology version or
    /// precedes the node's creation.
    RetiredOutOfRange,
    /// A live node hangs under a retired parent (the walk could never
    /// reach it).
    LiveChildOfTombstone,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TopologyError::Empty => "a topology needs at least one shard",
            TopologyError::ForwardParent => "topology nodes do not form a split forest",
            TopologyError::CreatedBeyondVersion => {
                "a node's creation version exceeds the topology version"
            }
            TopologyError::RetiredRoot => "a root shard carries a retirement tombstone",
            TopologyError::RetiredOutOfRange => {
                "a retirement tombstone is outside the topology's version range"
            }
            TopologyError::LiveChildOfTombstone => "a live shard hangs under a retired parent",
        })
    }
}

impl std::error::Error for TopologyError {}

/// Why a shard cannot be merged back into its parent right now.
///
/// Merges unwind splits in reverse: the candidate must be a live **leaf**
/// (no live children of its own) and the **last live child** of its
/// parent's split order — only then does retiring it return every one of
/// its keys to the parent, and nothing else moves.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MergeError {
    /// The shard id does not exist in the topology.
    NoSuchShard {
        /// The offending shard id.
        shard: usize,
        /// The topology's shard count (live + retired).
        shards: usize,
    },
    /// The shard is a root: there is no parent to merge into.
    RootShard {
        /// The offending shard id.
        shard: usize,
    },
    /// The shard was already retired by an earlier merge.
    AlreadyRetired {
        /// The offending shard id.
        shard: usize,
    },
    /// The shard still has live children; merge those first.
    HasLiveChildren {
        /// The offending shard id.
        shard: usize,
    },
    /// A later sibling is still live; splits unwind in reverse order.
    NotLastLiveChild {
        /// The offending shard id.
        shard: usize,
        /// The sibling that must merge first.
        last: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoSuchShard { shard, shards } => {
                write!(f, "no shard {shard} to merge (topology has {shards})")
            }
            MergeError::RootShard { shard } => {
                write!(f, "shard {shard} is a root and has no parent to merge into")
            }
            MergeError::AlreadyRetired { shard } => {
                write!(f, "shard {shard} was already retired by an earlier merge")
            }
            MergeError::HasLiveChildren { shard } => {
                write!(f, "shard {shard} still has live children; merge those first")
            }
            MergeError::NotLastLiveChild { shard, last } => {
                write!(f, "shard {shard} is not its parent's last live child (shard {last} is)")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A versioned shard topology: the rendezvous tree keys route through.
///
/// Topologies are immutable values; a split or merge produces a *new*
/// topology with the version bumped (the store publishes it atomically next
/// to the shard handles, see [`Store`](crate::store::Store)). Shard ids are
/// dense (`0..shards()`) and stable: a split only appends, a merge only
/// tombstones.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardTopology {
    version: u64,
    nodes: Vec<TopoNode>,
}

impl ShardTopology {
    /// A fresh topology of `shards` root shards at version 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn fresh(shards: usize) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        ShardTopology {
            version: 0,
            nodes: (0..shards as u64)
                .map(|i| TopoNode {
                    seed: root_seed(i),
                    parent: None,
                    created_at: 0,
                    retired_at: None,
                    children: Vec::new(),
                })
                .collect(),
        }
    }

    /// Rebuilds a topology from persisted node [`TopoRecord`]s in shard-id
    /// order; the inverse of iterating [`ShardTopology::node`].
    ///
    /// # Errors
    ///
    /// A [`TopologyError`] naming the structural defect: records that do
    /// not form a forest, versions outside the topology's range, a retired
    /// root, or a live node unreachable under a retired parent.
    pub fn from_nodes(version: u64, records: &[TopoRecord]) -> Result<Self, TopologyError> {
        if records.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut nodes: Vec<TopoNode> = records
            .iter()
            .map(|r| TopoNode {
                seed: r.seed,
                parent: r.parent,
                created_at: r.created_at,
                retired_at: r.retired_at,
                children: Vec::new(),
            })
            .collect();
        for (id, r) in records.iter().enumerate() {
            if r.created_at > version {
                return Err(TopologyError::CreatedBeyondVersion);
            }
            if let Some(retired_at) = r.retired_at {
                if r.parent.is_none() {
                    return Err(TopologyError::RetiredRoot);
                }
                if retired_at > version || retired_at <= r.created_at {
                    return Err(TopologyError::RetiredOutOfRange);
                }
            }
            if let Some(p) = r.parent {
                // Children are always created after their parent, so a
                // well-formed forest has strictly increasing ids down every
                // path.
                if p as usize >= id {
                    return Err(TopologyError::ForwardParent);
                }
                if records[p as usize].retired_at.is_some() && r.retired_at.is_none() {
                    return Err(TopologyError::LiveChildOfTombstone);
                }
                nodes[p as usize].children.push(id as u32);
            }
        }
        Ok(ShardTopology { version, nodes })
    }

    /// The topology version (bumped by every split and merge).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shard slots (live **and** retired — ids are dense and
    /// stable, so tombstones keep their slot).
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live shards (slots the placement walk can reach).
    pub fn live_shards(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_live()).count()
    }

    /// Whether shard `id` is live (routable) rather than a tombstone.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a shard id.
    pub fn is_live(&self, id: usize) -> bool {
        self.nodes[id].is_live()
    }

    /// The topology entry of shard `id`.
    pub fn node(&self, id: usize) -> &TopoNode {
        &self.nodes[id]
    }

    /// The shard owning `key`: rendezvous among the roots, then down the
    /// split tree (each **live** child claims the keys whose child-seeded
    /// score beats the parent-seeded score, in split order; tombstones are
    /// skipped, which is what hands a merged child's keys back to its
    /// parent).
    pub fn shard_of(&self, key: &str) -> usize {
        let mut owner = self
            .roots()
            .max_by_key(|&r| (rendezvous_score(self.nodes[r].seed, key), r))
            .expect("a topology has at least one root");
        'descend: loop {
            let here = rendezvous_score(self.nodes[owner].seed, key);
            for &child in &self.nodes[owner].children {
                if self.nodes[child as usize].is_live()
                    && rendezvous_score(self.nodes[child as usize].seed, key) > here
                {
                    owner = child as usize;
                    continue 'descend;
                }
            }
            return owner;
        }
    }

    /// Splits shard `parent`: returns the bumped topology and the new
    /// shard's id (always `self.shards()` — splits append).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a live shard id.
    pub fn split(&self, parent: usize) -> (ShardTopology, usize) {
        assert!(parent < self.nodes.len(), "no shard {parent} to split");
        assert!(self.nodes[parent].is_live(), "shard {parent} is retired and cannot split");
        let child = self.nodes.len();
        let version = self.version + 1;
        let mut nodes = self.nodes.clone();
        nodes[parent].children.push(child as u32);
        nodes.push(TopoNode {
            // Unique and deterministic: derived from the parent's seed and
            // the bump version, so a replayed split history yields the same
            // tree.
            seed: child_seed(self.nodes[parent].seed, version),
            parent: Some(parent as u32),
            created_at: version,
            retired_at: None,
            children: Vec::new(),
        });
        (ShardTopology { version, nodes }, child)
    }

    /// Checks whether shard `child` may merge back into its parent right
    /// now; returns the parent's id.
    ///
    /// # Errors
    ///
    /// A [`MergeError`] naming the obstruction. Merges unwind splits in
    /// reverse: the candidate must be live, non-root, a leaf (no live
    /// children), and the **last live child** in its parent's split order —
    /// exactly the condition under which retiring it returns all of its
    /// keys to the parent and moves nothing else.
    pub fn check_merge(&self, child: usize) -> Result<usize, MergeError> {
        let Some(node) = self.nodes.get(child) else {
            return Err(MergeError::NoSuchShard { shard: child, shards: self.nodes.len() });
        };
        let Some(parent) = node.parent else {
            return Err(MergeError::RootShard { shard: child });
        };
        if !node.is_live() {
            return Err(MergeError::AlreadyRetired { shard: child });
        }
        if node.children.iter().any(|&c| self.nodes[c as usize].is_live()) {
            return Err(MergeError::HasLiveChildren { shard: child });
        }
        let last_live = self.nodes[parent as usize]
            .children
            .iter()
            .copied()
            .rfind(|&c| self.nodes[c as usize].is_live())
            .expect("child is a live child of its parent");
        if last_live as usize != child {
            return Err(MergeError::NotLastLiveChild { shard: child, last: last_live as usize });
        }
        Ok(parent as usize)
    }

    /// Merges shard `child` back into its parent: returns the bumped
    /// topology (the child tombstoned at the new version) and the parent's
    /// id. The inverse of [`ShardTopology::split`]: placement after the
    /// merge equals placement before the child's split, restricted to the
    /// keys the child subtree ever owned.
    ///
    /// # Errors
    ///
    /// Any [`MergeError`] from [`ShardTopology::check_merge`].
    pub fn merge(&self, child: usize) -> Result<(ShardTopology, usize), MergeError> {
        let parent = self.check_merge(child)?;
        let version = self.version + 1;
        let mut nodes = self.nodes.clone();
        nodes[child].retired_at = Some(version);
        Ok((ShardTopology { version, nodes }, parent))
    }

    /// The initial (root) shard ids.
    fn roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| n.parent.is_none()).map(|(i, _)| i)
    }

    /// Plans a batch: splits the ops into per-shard sub-batches, broadcast
    /// ops (scans) going to every **live** shard (tombstones hold no data
    /// and receive nothing).
    pub fn plan(&self, ops: Vec<StoreOp>) -> BatchPlan {
        let mut per_shard: Vec<Vec<StoreOp>> = vec![Vec::new(); self.shards()];
        let mut slots = Vec::with_capacity(ops.len());
        for op in ops {
            match op.routing_key() {
                Some(key) => {
                    let shard = self.shard_of(key);
                    slots.push(RespSlot::Single { shard, index: per_shard[shard].len() });
                    per_shard[shard].push(op);
                }
                None => {
                    let mut indices = Vec::with_capacity(self.nodes.len());
                    for (s, sub) in per_shard.iter_mut().enumerate() {
                        if self.nodes[s].is_live() {
                            indices.push((s, sub.len()));
                            sub.push(op.clone());
                        }
                    }
                    slots.push(RespSlot::Broadcast { indices });
                }
            }
        }
        BatchPlan { per_shard, slots }
    }
}

fn root_seed(i: u64) -> u64 {
    splitmix64(0x5eed_0000_0000_0000 ^ i)
}

fn child_seed(parent_seed: u64, version: u64) -> u64 {
    splitmix64(parent_seed ^ version.rotate_left(32))
}

/// SplitMix64 (reference constants): seed whitening for the rendezvous
/// identities here, op-stream derivation in [`workload`](crate::workload).
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Where one op's response comes from after the per-shard commits.
#[derive(Clone, PartialEq, Eq, Debug)]
enum RespSlot {
    /// The op went to a single shard, at `index` within its sub-batch.
    Single {
        /// The owning shard.
        shard: usize,
        /// Index within that shard's sub-batch.
        index: usize,
    },
    /// The op was broadcast to every live shard; each entry is a
    /// `(shard, index-within-that-shard's-sub-batch)` pair.
    Broadcast {
        /// The live shards the op went to, with its sub-batch index there.
        indices: Vec<(usize, usize)>,
    },
}

/// The result of [`ShardTopology::plan`]: per-shard sub-batches plus the
/// recipe for reassembling responses in the original invocation order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchPlan {
    per_shard: Vec<Vec<StoreOp>>,
    slots: Vec<RespSlot>,
}

impl BatchPlan {
    /// The sub-batch destined for shard `s` (empty if the shard is idle).
    pub fn sub_batch(&self, s: usize) -> &[StoreOp] {
        &self.per_shard[s]
    }

    /// Shards with at least one op, in index order.
    pub fn active_shards(&self) -> impl Iterator<Item = usize> + '_ {
        self.per_shard.iter().enumerate().filter(|(_, sub)| !sub.is_empty()).map(|(s, _)| s)
    }

    /// Takes ownership of the per-shard sub-batches (index = shard).
    pub fn into_sub_batches(self) -> (Vec<Vec<StoreOp>>, BatchReassembly) {
        (self.per_shard, BatchReassembly { slots: self.slots })
    }
}

/// Reassembles per-shard responses into invocation order; the second half
/// of a [`BatchPlan`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchReassembly {
    slots: Vec<RespSlot>,
}

impl BatchReassembly {
    /// Merges `per_shard[s]` (responses of shard `s`'s sub-batch, in
    /// sub-batch order) back into one response vector in invocation order.
    /// Broadcast scans are merged across shards into key order; if any
    /// shard rejected its copy of a broadcast op as stale
    /// ([`StoreResp::Moved`]), the merged response is `Moved` so the client
    /// retries the whole (read-only) op against the fresh topology.
    ///
    /// # Panics
    ///
    /// Panics if the response shapes do not match the plan (a store bug).
    pub fn reassemble(&self, per_shard: Vec<Vec<StoreResp>>) -> Vec<StoreResp> {
        self.slots
            .iter()
            .map(|slot| match slot {
                RespSlot::Single { shard, index } => per_shard[*shard][*index].clone(),
                RespSlot::Broadcast { indices } => {
                    let mut merged: Vec<(Key, u64)> = Vec::new();
                    let mut moved_epoch = None;
                    for &(s, i) in indices {
                        match &per_shard[s][i] {
                            StoreResp::Entries(entries) => merged.extend(entries.iter().cloned()),
                            StoreResp::Moved { epoch } => {
                                moved_epoch =
                                    Some(moved_epoch.map_or(*epoch, |e: u64| e.max(*epoch)));
                            }
                            other => panic!("broadcast slot returned {other:?}"),
                        }
                    }
                    if let Some(epoch) = moved_epoch {
                        return StoreResp::Moved { epoch };
                    }
                    merged.sort_by(|a, b| a.0.cmp(&b.0));
                    StoreResp::Entries(merged)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_in_range() {
        let t = ShardTopology::fresh(4);
        for key in ["", "a", "alpha", "zebra", "key/with/path"] {
            let s = t.shard_of(key);
            assert!(s < 4);
            assert_eq!(s, t.shard_of(key), "stable placement for {key:?}");
        }
        // One shard routes everything to 0.
        let t1 = ShardTopology::fresh(1);
        assert_eq!(t1.shard_of("anything"), 0);
    }

    #[test]
    fn hashing_spreads_keys() {
        let t = ShardTopology::fresh(8);
        let mut seen = [false; 8];
        for i in 0..256 {
            seen[t.shard_of(&format!("key-{i}"))] = true;
        }
        assert!(seen.iter().all(|&b| b), "256 keys must touch all 8 shards");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardTopology::fresh(0);
    }

    #[test]
    fn split_moves_keys_only_to_the_new_shard() {
        let t = ShardTopology::fresh(4);
        let hot = 2;
        let (t2, fresh) = t.split(hot);
        assert_eq!(fresh, 4);
        assert_eq!(t2.version(), 1);
        assert_eq!(t2.shards(), 5);
        let mut moved = 0;
        for i in 0..2048 {
            let key = format!("key/{i}");
            let before = t.shard_of(&key);
            let after = t2.shard_of(&key);
            if before != after {
                assert_eq!(after, fresh, "{key} may only move to the new shard");
                assert_eq!(before, hot, "{key} may only move away from the split shard");
                moved += 1;
            }
        }
        assert!(moved > 0, "a split must actually relieve the split shard");
    }

    #[test]
    fn repeated_splits_keep_balancing_the_same_shard() {
        // Splitting shard 0 twice: the second split moves keys only from
        // what shard 0 retained, never from the first child.
        let t0 = ShardTopology::fresh(2);
        let (t1, c1) = t0.split(0);
        let (t2, c2) = t1.split(0);
        assert_eq!((c1, c2), (2, 3));
        assert_eq!(t2.version(), 2);
        for i in 0..1024 {
            let key = format!("k{i}");
            let (a, b) = (t1.shard_of(&key), t2.shard_of(&key));
            if a != b {
                assert_eq!(b, c2);
                assert_eq!(a, 0, "the second split must not disturb the first child");
            }
        }
    }

    #[test]
    fn split_children_can_split_again() {
        let t0 = ShardTopology::fresh(1);
        let (t1, c1) = t0.split(0);
        let (t2, c2) = t1.split(c1);
        assert_eq!(t2.node(c2).parent, Some(c1 as u32));
        for i in 0..1024 {
            let key = format!("deep/{i}");
            let (a, b) = (t1.shard_of(&key), t2.shard_of(&key));
            if a != b {
                assert_eq!(b, c2);
                assert_eq!(a, c1, "a child split moves only the child's keys");
            }
        }
    }

    fn records_of(t: &ShardTopology) -> Vec<TopoRecord> {
        (0..t.shards())
            .map(|s| {
                let n = t.node(s);
                TopoRecord {
                    seed: n.seed,
                    parent: n.parent,
                    created_at: n.created_at,
                    retired_at: n.retired_at,
                }
            })
            .collect()
    }

    fn rec(seed: u64, parent: Option<u32>, created_at: u64, retired_at: Option<u64>) -> TopoRecord {
        TopoRecord { seed, parent, created_at, retired_at }
    }

    #[test]
    fn from_nodes_roundtrips_and_validates() {
        let (t, _) = ShardTopology::fresh(3).split(1);
        let rebuilt =
            ShardTopology::from_nodes(t.version(), &records_of(&t)).expect("valid records");
        assert_eq!(rebuilt, t);
        for key in ["a", "b", "c", "key/17"] {
            assert_eq!(rebuilt.shard_of(key), t.shard_of(key));
        }
        // A child pointing at itself or a later id is rejected.
        assert_eq!(
            ShardTopology::from_nodes(1, &[rec(1, Some(0), 1, None), rec(2, Some(1), 1, None)]),
            Err(TopologyError::ForwardParent)
        );
        assert_eq!(
            ShardTopology::from_nodes(0, &[rec(1, Some(1), 0, None)]),
            Err(TopologyError::ForwardParent)
        );
        assert_eq!(ShardTopology::from_nodes(0, &[]), Err(TopologyError::Empty));
        // created_at beyond the topology version is rejected.
        assert_eq!(
            ShardTopology::from_nodes(0, &[rec(1, None, 0, None), rec(2, Some(0), 1, None)]),
            Err(TopologyError::CreatedBeyondVersion)
        );
    }

    #[test]
    fn from_nodes_validates_tombstones() {
        // A tombstoned topology round-trips.
        let (t1, child) = ShardTopology::fresh(2).split(0);
        let (t2, _) = t1.merge(child).expect("fresh child merges");
        let rebuilt =
            ShardTopology::from_nodes(t2.version(), &records_of(&t2)).expect("valid tombstones");
        assert_eq!(rebuilt, t2);
        // A retired root is invalid.
        assert_eq!(
            ShardTopology::from_nodes(1, &[rec(1, None, 0, Some(1))]),
            Err(TopologyError::RetiredRoot)
        );
        // Retirement outside (created_at, version] is invalid.
        assert_eq!(
            ShardTopology::from_nodes(2, &[rec(1, None, 0, None), rec(2, Some(0), 1, Some(3))]),
            Err(TopologyError::RetiredOutOfRange)
        );
        assert_eq!(
            ShardTopology::from_nodes(2, &[rec(1, None, 0, None), rec(2, Some(0), 1, Some(1))]),
            Err(TopologyError::RetiredOutOfRange)
        );
        // A live node under a retired parent is unreachable.
        assert_eq!(
            ShardTopology::from_nodes(
                3,
                &[rec(1, None, 0, None), rec(2, Some(0), 1, Some(3)), rec(3, Some(1), 2, None),]
            ),
            Err(TopologyError::LiveChildOfTombstone)
        );
        // Errors render.
        for e in [
            TopologyError::Empty,
            TopologyError::ForwardParent,
            TopologyError::CreatedBeyondVersion,
            TopologyError::RetiredRoot,
            TopologyError::RetiredOutOfRange,
            TopologyError::LiveChildOfTombstone,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn merge_restores_the_parents_placement_exactly() {
        // Split shard 1 of 4, then merge the child back: every key routes
        // exactly where it did before the split.
        let t0 = ShardTopology::fresh(4);
        let (t1, child) = t0.split(1);
        let (t2, parent) = t1.merge(child).expect("last live child merges");
        assert_eq!(parent, 1);
        assert_eq!(t2.version(), 2);
        assert_eq!(t2.shards(), 5, "tombstones keep their slot");
        assert_eq!(t2.live_shards(), 4);
        assert!(!t2.is_live(child));
        assert_eq!(t2.node(child).retired_at, Some(2));
        for i in 0..2048 {
            let key = format!("key/{i}");
            assert_eq!(
                t2.shard_of(&key),
                t0.shard_of(&key),
                "{key} must route as before the split"
            );
        }
    }

    #[test]
    fn merge_moves_keys_only_child_to_parent() {
        let (t1, child) = ShardTopology::fresh(3).split(2);
        let (t2, parent) = t1.merge(child).expect("merge");
        let mut moved = 0;
        for i in 0..2048 {
            let key = format!("k{i}");
            let (before, after) = (t1.shard_of(&key), t2.shard_of(&key));
            if before != after {
                assert_eq!(before, child, "{key} may only leave the retired child");
                assert_eq!(after, parent, "{key} may only return to the parent");
                moved += 1;
            }
        }
        assert!(moved > 0, "the merge must actually hand keys back");
    }

    #[test]
    fn merge_eligibility_is_typed() {
        let t = ShardTopology::fresh(2);
        assert_eq!(
            t.check_merge(5),
            Err(MergeError::NoSuchShard { shard: 5, shards: 2 }),
            "{}",
            MergeError::NoSuchShard { shard: 5, shards: 2 }
        );
        assert_eq!(t.check_merge(0), Err(MergeError::RootShard { shard: 0 }));
        // Stack two splits of shard 0: children 2 then 3. Shard 2 is not
        // the last live child; shard 3 is; splitting 2 gives it a live
        // child of its own.
        let (t1, c1) = t.split(0);
        let (t2, c2) = t1.split(0);
        assert_eq!((c1, c2), (2, 3));
        assert_eq!(t2.check_merge(c1), Err(MergeError::NotLastLiveChild { shard: c1, last: c2 }));
        let (t3, c3) = t2.split(c1);
        assert_eq!(t3.check_merge(c1), Err(MergeError::HasLiveChildren { shard: c1 }));
        assert_eq!(t3.check_merge(c3), Ok(c1), "a leaf last-live-child is eligible");
        // After merging c3 and c2, c1 becomes mergeable.
        let (t4, _) = t3.merge(c3).unwrap();
        assert_eq!(t4.check_merge(c3), Err(MergeError::AlreadyRetired { shard: c3 }));
        let (t5, _) = t4.merge(c2).unwrap();
        let (t6, _) = t5.merge(c1).unwrap();
        assert_eq!(t6.live_shards(), 2, "the whole split stack unwinds");
        for i in 0..512 {
            let key = format!("unwind/{i}");
            assert_eq!(t6.shard_of(&key), t.shard_of(&key), "full unwind restores fresh placement");
        }
        // Every error renders.
        for e in [
            MergeError::NoSuchShard { shard: 1, shards: 1 },
            MergeError::RootShard { shard: 1 },
            MergeError::AlreadyRetired { shard: 1 },
            MergeError::HasLiveChildren { shard: 1 },
            MergeError::NotLastLiveChild { shard: 1, last: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn split_after_merge_reuses_no_slot_and_routes_fresh() {
        // Merge a child away, split the same parent again: the new child
        // gets a fresh slot (append-only ids) and its own seed.
        let (t1, c1) = ShardTopology::fresh(2).split(0);
        let (t2, _) = t1.merge(c1).unwrap();
        let (t3, c2) = t2.split(0);
        assert_eq!(c2, 3, "tombstoned slots are never reused");
        assert!(t3.is_live(c2));
        assert!(!t3.is_live(c1));
        assert_ne!(
            t3.node(c2).seed,
            t3.node(c1).seed,
            "the bump version differs, so the seed does"
        );
        // The new child takes keys only from the parent.
        for i in 0..1024 {
            let key = format!("re/{i}");
            let (a, b) = (t2.shard_of(&key), t3.shard_of(&key));
            if a != b {
                assert_eq!(b, c2);
                assert_eq!(a, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "retired and cannot split")]
    fn splitting_a_tombstone_panics() {
        let (t1, child) = ShardTopology::fresh(1).split(0);
        let (t2, _) = t1.merge(child).unwrap();
        let _ = t2.split(child);
    }

    #[test]
    fn broadcasts_skip_tombstones() {
        let (t1, child) = ShardTopology::fresh(2).split(0);
        let (t2, _) = t1.merge(child).unwrap();
        let plan = t2.plan(vec![StoreOp::Scan { from: "".into(), to: "z".into() }]);
        assert!(plan.sub_batch(child).is_empty(), "tombstones receive no broadcast copy");
        assert_eq!(plan.active_shards().count(), 2, "both live shards get the scan");
        let (subs, reassembly) = plan.into_sub_batches();
        let per_shard: Vec<Vec<StoreResp>> = subs
            .iter()
            .map(|sub| {
                let mut state = crate::ops::ShardState::new();
                sub.iter().map(|op| crate::ops::apply_op(&mut state, op)).collect()
            })
            .collect();
        assert_eq!(reassembly.reassemble(per_shard), vec![StoreResp::Entries(vec![])]);
    }

    #[test]
    fn plan_routes_and_reassembles_in_order() {
        let t = ShardTopology::fresh(3);
        let ops = vec![
            StoreOp::Put("a".into(), 1),
            StoreOp::Put("b".into(), 2),
            StoreOp::Get("a".into()),
        ];
        let plan = t.plan(ops.clone());
        let (subs, reassembly) = plan.into_sub_batches();
        // Apply each sub-batch against a scratch state to fake shard commits.
        let mut per_shard = Vec::new();
        for sub in &subs {
            let mut state = crate::ops::ShardState::new();
            per_shard.push(sub.iter().map(|op| crate::ops::apply_op(&mut state, op)).collect());
        }
        let resps = reassembly.reassemble(per_shard);
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0], StoreResp::Value(None));
        assert_eq!(resps[1], StoreResp::Value(None));
        assert_eq!(resps[2], StoreResp::Value(Some(1)), "get sees the same-shard put");
    }

    #[test]
    fn scans_broadcast_to_every_shard_and_merge_sorted() {
        let t = ShardTopology::fresh(4);
        let mut ops: Vec<StoreOp> = (0..16).map(|i| StoreOp::Put(format!("k{i:02}"), i)).collect();
        ops.push(StoreOp::Scan { from: "k00".into(), to: "k99".into() });
        let plan = t.plan(ops);
        for s in 0..4 {
            assert!(
                matches!(plan.sub_batch(s).last(), Some(StoreOp::Scan { .. })),
                "scan must reach shard {s}"
            );
        }
        let (subs, reassembly) = plan.into_sub_batches();
        let mut per_shard = Vec::new();
        for sub in &subs {
            let mut state = crate::ops::ShardState::new();
            per_shard.push(sub.iter().map(|op| crate::ops::apply_op(&mut state, op)).collect());
        }
        let resps = reassembly.reassemble(per_shard);
        match resps.last().unwrap() {
            StoreResp::Entries(entries) => {
                assert_eq!(entries.len(), 16, "scan sees every key across shards");
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                assert_eq!(keys, sorted, "merged scan is in key order");
            }
            other => panic!("scan returned {other:?}"),
        }
    }

    #[test]
    fn broadcast_reassembly_surfaces_staleness() {
        // If any shard rejected its copy of a scan as stale, the merged
        // response must be Moved (with the highest epoch seen), never a
        // silent partial merge.
        let t = ShardTopology::fresh(2);
        let plan = t.plan(vec![StoreOp::Scan { from: "".into(), to: "z".into() }]);
        let (_, reassembly) = plan.into_sub_batches();
        let resps = reassembly.reassemble(vec![
            vec![StoreResp::Entries(vec![("a".into(), 1)])],
            vec![StoreResp::Moved { epoch: 3 }],
        ]);
        assert_eq!(resps, vec![StoreResp::Moved { epoch: 3 }]);
    }

    #[test]
    fn active_shards_skips_idle_ones() {
        let t = ShardTopology::fresh(4);
        let plan = t.plan(vec![StoreOp::Put("only".into(), 1)]);
        let active: Vec<usize> = plan.active_shards().collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0], t.shard_of("only"));
    }
}
