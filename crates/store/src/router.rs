//! The shard router: rendezvous-hashed key placement over a **versioned
//! shard topology**, and batch planning.
//!
//! Placement is hierarchical rendezvous (HRW) hashing. The initial `S`
//! shards are the *roots*: a key belongs to the root whose seeded hash of
//! the key is highest (the classic highest-random-weight rule, replacing
//! the old static `FNV % S` map). A **live split** of shard `p` attaches a
//! fresh child shard `c` under `p`: keys currently owned by `p` re-rendezvous
//! pairwise between `p` and `c` — `c` takes exactly the keys whose
//! `c`-seeded hash beats their `p`-seeded hash (≈ half). Children are
//! consulted in split order, so a key's owner is a deterministic walk down
//! the split tree.
//!
//! Two properties fall out of this structure:
//!
//! * **minimal disruption** — a split moves keys *only* from the split
//!   shard *only* to the new shard; every other placement in the store is
//!   untouched (property-tested in `tests/store_oracle.rs`);
//! * **local migration** — the split shard's sealed state alone contains
//!   every key that moves, so a live split migrates from one shard's
//!   checkpoint without touching the others.
//!
//! Each topology carries a **version**, bumped by every split. Batches are
//! stamped with the version they were planned under
//! ([`Batch::planned_at`](crate::ops::Batch)); a shard whose state has seen
//! a later split rejects stale sub-batches with
//! [`StoreResp::Moved`](crate::ops::StoreResp) at the linearization point,
//! and the client re-plans them against the published topology (see
//! [`Client::execute`](crate::store::Client::execute)).
//!
//! [`BatchPlan`] turns one client batch into at most one sub-batch per
//! shard (the batching contract of the operation layer) and remembers how
//! to reassemble responses in invocation order, merging broadcast scans
//! across shards.

use crate::ops::{Key, StoreOp, StoreResp};

/// FNV-1a 64-bit: key digests here, frame checksums in
/// [`persist`](crate::persist) — one implementation for both.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The rendezvous score of `key` for a shard with the given `seed`: the
/// highest score in a candidate set owns the key.
///
/// The key digest is mixed with the seed through a SplitMix64 finalizer —
/// FNV alone has too little avalanche for *cross-seed ordering* to decorrelate
/// (a raw seeded FNV makes one seed win almost every key).
pub(crate) fn rendezvous_score(seed: u64, key: &str) -> u64 {
    splitmix64(seed ^ fnv1a64(key.as_bytes()))
}

/// One shard's entry in the topology tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TopoNode {
    /// The rendezvous seed identifying this shard.
    pub seed: u64,
    /// The shard this one was split off from (`None` for the initial
    /// roots).
    pub parent: Option<u32>,
    /// The topology version whose split created this shard (0 for roots).
    pub created_at: u64,
    /// Shards split off this one, in split order.
    children: Vec<u32>,
}

/// A versioned shard topology: the rendezvous tree keys route through.
///
/// Topologies are immutable values; a split produces a *new* topology with
/// the version bumped (the store publishes it atomically next to the shard
/// handles, see [`Store`](crate::store::Store)). Shard ids are dense
/// (`0..shards()`) and stable across splits: a split only appends.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardTopology {
    version: u64,
    nodes: Vec<TopoNode>,
}

impl ShardTopology {
    /// A fresh topology of `shards` root shards at version 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn fresh(shards: usize) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        ShardTopology {
            version: 0,
            nodes: (0..shards as u64)
                .map(|i| TopoNode {
                    seed: root_seed(i),
                    parent: None,
                    created_at: 0,
                    children: Vec::new(),
                })
                .collect(),
        }
    }

    /// Rebuilds a topology from persisted node records (`seed`, `parent`,
    /// `created_at` per shard, in shard-id order); the inverse of iterating
    /// [`ShardTopology::node`].
    ///
    /// Returns `None` if the records do not form a forest (a parent id at
    /// or above its child's, which also rules out cycles).
    pub fn from_nodes(version: u64, records: &[(u64, Option<u32>, u64)]) -> Option<Self> {
        if records.is_empty() {
            return None;
        }
        let mut nodes: Vec<TopoNode> = records
            .iter()
            .map(|&(seed, parent, created_at)| TopoNode {
                seed,
                parent,
                created_at,
                children: Vec::new(),
            })
            .collect();
        for (id, &(_, parent, created_at)) in records.iter().enumerate() {
            if created_at > version {
                return None;
            }
            if let Some(p) = parent {
                // Children are always created after their parent, so a
                // well-formed forest has strictly increasing ids down every
                // path.
                if p as usize >= id {
                    return None;
                }
                nodes[p as usize].children.push(id as u32);
            }
        }
        Some(ShardTopology { version, nodes })
    }

    /// The topology version (bumped by every split).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// The topology entry of shard `id`.
    pub fn node(&self, id: usize) -> &TopoNode {
        &self.nodes[id]
    }

    /// The shard owning `key`: rendezvous among the roots, then down the
    /// split tree (each child claims the keys whose child-seeded score
    /// beats the parent-seeded score, in split order).
    pub fn shard_of(&self, key: &str) -> usize {
        let mut owner = self
            .roots()
            .max_by_key(|&r| (rendezvous_score(self.nodes[r].seed, key), r))
            .expect("a topology has at least one root");
        'descend: loop {
            let here = rendezvous_score(self.nodes[owner].seed, key);
            for &child in &self.nodes[owner].children {
                if rendezvous_score(self.nodes[child as usize].seed, key) > here {
                    owner = child as usize;
                    continue 'descend;
                }
            }
            return owner;
        }
    }

    /// Splits shard `parent`: returns the bumped topology and the new
    /// shard's id (always `self.shards()` — splits append).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a shard id.
    pub fn split(&self, parent: usize) -> (ShardTopology, usize) {
        assert!(parent < self.nodes.len(), "no shard {parent} to split");
        let child = self.nodes.len();
        let version = self.version + 1;
        let mut nodes = self.nodes.clone();
        nodes[parent].children.push(child as u32);
        nodes.push(TopoNode {
            // Unique and deterministic: derived from the parent's seed and
            // the bump version, so a replayed split history yields the same
            // tree.
            seed: child_seed(self.nodes[parent].seed, version),
            parent: Some(parent as u32),
            created_at: version,
            children: Vec::new(),
        });
        (ShardTopology { version, nodes }, child)
    }

    /// The initial (root) shard ids.
    fn roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| n.parent.is_none()).map(|(i, _)| i)
    }

    /// Plans a batch: splits the ops into per-shard sub-batches, broadcast
    /// ops (scans) going to every shard.
    pub fn plan(&self, ops: Vec<StoreOp>) -> BatchPlan {
        let mut per_shard: Vec<Vec<StoreOp>> = vec![Vec::new(); self.shards()];
        let mut slots = Vec::with_capacity(ops.len());
        for op in ops {
            match op.routing_key() {
                Some(key) => {
                    let shard = self.shard_of(key);
                    slots.push(RespSlot::Single { shard, index: per_shard[shard].len() });
                    per_shard[shard].push(op);
                }
                None => {
                    let indices: Vec<usize> = per_shard.iter().map(Vec::len).collect();
                    for sub in per_shard.iter_mut() {
                        sub.push(op.clone());
                    }
                    slots.push(RespSlot::Broadcast { indices });
                }
            }
        }
        BatchPlan { per_shard, slots }
    }
}

fn root_seed(i: u64) -> u64 {
    splitmix64(0x5eed_0000_0000_0000 ^ i)
}

fn child_seed(parent_seed: u64, version: u64) -> u64 {
    splitmix64(parent_seed ^ version.rotate_left(32))
}

/// SplitMix64 (reference constants): seed whitening for the rendezvous
/// identities here, op-stream derivation in [`workload`](crate::workload).
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Where one op's response comes from after the per-shard commits.
#[derive(Clone, PartialEq, Eq, Debug)]
enum RespSlot {
    /// The op went to a single shard, at `index` within its sub-batch.
    Single {
        /// The owning shard.
        shard: usize,
        /// Index within that shard's sub-batch.
        index: usize,
    },
    /// The op was broadcast; `indices[s]` is its index in shard `s`'s
    /// sub-batch.
    Broadcast {
        /// Per-shard sub-batch indices.
        indices: Vec<usize>,
    },
}

/// The result of [`ShardTopology::plan`]: per-shard sub-batches plus the
/// recipe for reassembling responses in the original invocation order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchPlan {
    per_shard: Vec<Vec<StoreOp>>,
    slots: Vec<RespSlot>,
}

impl BatchPlan {
    /// The sub-batch destined for shard `s` (empty if the shard is idle).
    pub fn sub_batch(&self, s: usize) -> &[StoreOp] {
        &self.per_shard[s]
    }

    /// Shards with at least one op, in index order.
    pub fn active_shards(&self) -> impl Iterator<Item = usize> + '_ {
        self.per_shard.iter().enumerate().filter(|(_, sub)| !sub.is_empty()).map(|(s, _)| s)
    }

    /// Takes ownership of the per-shard sub-batches (index = shard).
    pub fn into_sub_batches(self) -> (Vec<Vec<StoreOp>>, BatchReassembly) {
        (self.per_shard, BatchReassembly { slots: self.slots })
    }
}

/// Reassembles per-shard responses into invocation order; the second half
/// of a [`BatchPlan`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchReassembly {
    slots: Vec<RespSlot>,
}

impl BatchReassembly {
    /// Merges `per_shard[s]` (responses of shard `s`'s sub-batch, in
    /// sub-batch order) back into one response vector in invocation order.
    /// Broadcast scans are merged across shards into key order; if any
    /// shard rejected its copy of a broadcast op as stale
    /// ([`StoreResp::Moved`]), the merged response is `Moved` so the client
    /// retries the whole (read-only) op against the fresh topology.
    ///
    /// # Panics
    ///
    /// Panics if the response shapes do not match the plan (a store bug).
    pub fn reassemble(&self, per_shard: Vec<Vec<StoreResp>>) -> Vec<StoreResp> {
        self.slots
            .iter()
            .map(|slot| match slot {
                RespSlot::Single { shard, index } => per_shard[*shard][*index].clone(),
                RespSlot::Broadcast { indices } => {
                    let mut merged: Vec<(Key, u64)> = Vec::new();
                    let mut moved_epoch = None;
                    for (s, &i) in indices.iter().enumerate() {
                        match &per_shard[s][i] {
                            StoreResp::Entries(entries) => merged.extend(entries.iter().cloned()),
                            StoreResp::Moved { epoch } => {
                                moved_epoch =
                                    Some(moved_epoch.map_or(*epoch, |e: u64| e.max(*epoch)));
                            }
                            other => panic!("broadcast slot returned {other:?}"),
                        }
                    }
                    if let Some(epoch) = moved_epoch {
                        return StoreResp::Moved { epoch };
                    }
                    merged.sort_by(|a, b| a.0.cmp(&b.0));
                    StoreResp::Entries(merged)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_in_range() {
        let t = ShardTopology::fresh(4);
        for key in ["", "a", "alpha", "zebra", "key/with/path"] {
            let s = t.shard_of(key);
            assert!(s < 4);
            assert_eq!(s, t.shard_of(key), "stable placement for {key:?}");
        }
        // One shard routes everything to 0.
        let t1 = ShardTopology::fresh(1);
        assert_eq!(t1.shard_of("anything"), 0);
    }

    #[test]
    fn hashing_spreads_keys() {
        let t = ShardTopology::fresh(8);
        let mut seen = [false; 8];
        for i in 0..256 {
            seen[t.shard_of(&format!("key-{i}"))] = true;
        }
        assert!(seen.iter().all(|&b| b), "256 keys must touch all 8 shards");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardTopology::fresh(0);
    }

    #[test]
    fn split_moves_keys_only_to_the_new_shard() {
        let t = ShardTopology::fresh(4);
        let hot = 2;
        let (t2, fresh) = t.split(hot);
        assert_eq!(fresh, 4);
        assert_eq!(t2.version(), 1);
        assert_eq!(t2.shards(), 5);
        let mut moved = 0;
        for i in 0..2048 {
            let key = format!("key/{i}");
            let before = t.shard_of(&key);
            let after = t2.shard_of(&key);
            if before != after {
                assert_eq!(after, fresh, "{key} may only move to the new shard");
                assert_eq!(before, hot, "{key} may only move away from the split shard");
                moved += 1;
            }
        }
        assert!(moved > 0, "a split must actually relieve the split shard");
    }

    #[test]
    fn repeated_splits_keep_balancing_the_same_shard() {
        // Splitting shard 0 twice: the second split moves keys only from
        // what shard 0 retained, never from the first child.
        let t0 = ShardTopology::fresh(2);
        let (t1, c1) = t0.split(0);
        let (t2, c2) = t1.split(0);
        assert_eq!((c1, c2), (2, 3));
        assert_eq!(t2.version(), 2);
        for i in 0..1024 {
            let key = format!("k{i}");
            let (a, b) = (t1.shard_of(&key), t2.shard_of(&key));
            if a != b {
                assert_eq!(b, c2);
                assert_eq!(a, 0, "the second split must not disturb the first child");
            }
        }
    }

    #[test]
    fn split_children_can_split_again() {
        let t0 = ShardTopology::fresh(1);
        let (t1, c1) = t0.split(0);
        let (t2, c2) = t1.split(c1);
        assert_eq!(t2.node(c2).parent, Some(c1 as u32));
        for i in 0..1024 {
            let key = format!("deep/{i}");
            let (a, b) = (t1.shard_of(&key), t2.shard_of(&key));
            if a != b {
                assert_eq!(b, c2);
                assert_eq!(a, c1, "a child split moves only the child's keys");
            }
        }
    }

    #[test]
    fn from_nodes_roundtrips_and_validates() {
        let (t, _) = ShardTopology::fresh(3).split(1);
        let records: Vec<(u64, Option<u32>, u64)> = (0..t.shards())
            .map(|s| {
                let n = t.node(s);
                (n.seed, n.parent, n.created_at)
            })
            .collect();
        let rebuilt = ShardTopology::from_nodes(t.version(), &records).expect("valid records");
        assert_eq!(rebuilt, t);
        for key in ["a", "b", "c", "key/17"] {
            assert_eq!(rebuilt.shard_of(key), t.shard_of(key));
        }
        // A child pointing at itself or a later id is rejected.
        assert!(ShardTopology::from_nodes(1, &[(1, Some(0), 1), (2, Some(1), 1)]).is_none());
        assert!(ShardTopology::from_nodes(0, &[(1, Some(1), 0)]).is_none());
        assert!(ShardTopology::from_nodes(0, &[]).is_none());
        // created_at beyond the topology version is rejected.
        assert!(ShardTopology::from_nodes(0, &[(1, None, 0), (2, Some(0), 1)]).is_none());
    }

    #[test]
    fn plan_routes_and_reassembles_in_order() {
        let t = ShardTopology::fresh(3);
        let ops = vec![
            StoreOp::Put("a".into(), 1),
            StoreOp::Put("b".into(), 2),
            StoreOp::Get("a".into()),
        ];
        let plan = t.plan(ops.clone());
        let (subs, reassembly) = plan.into_sub_batches();
        // Apply each sub-batch against a scratch state to fake shard commits.
        let mut per_shard = Vec::new();
        for sub in &subs {
            let mut state = crate::ops::ShardState::new();
            per_shard.push(sub.iter().map(|op| crate::ops::apply_op(&mut state, op)).collect());
        }
        let resps = reassembly.reassemble(per_shard);
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0], StoreResp::Value(None));
        assert_eq!(resps[1], StoreResp::Value(None));
        assert_eq!(resps[2], StoreResp::Value(Some(1)), "get sees the same-shard put");
    }

    #[test]
    fn scans_broadcast_to_every_shard_and_merge_sorted() {
        let t = ShardTopology::fresh(4);
        let mut ops: Vec<StoreOp> = (0..16).map(|i| StoreOp::Put(format!("k{i:02}"), i)).collect();
        ops.push(StoreOp::Scan { from: "k00".into(), to: "k99".into() });
        let plan = t.plan(ops);
        for s in 0..4 {
            assert!(
                matches!(plan.sub_batch(s).last(), Some(StoreOp::Scan { .. })),
                "scan must reach shard {s}"
            );
        }
        let (subs, reassembly) = plan.into_sub_batches();
        let mut per_shard = Vec::new();
        for sub in &subs {
            let mut state = crate::ops::ShardState::new();
            per_shard.push(sub.iter().map(|op| crate::ops::apply_op(&mut state, op)).collect());
        }
        let resps = reassembly.reassemble(per_shard);
        match resps.last().unwrap() {
            StoreResp::Entries(entries) => {
                assert_eq!(entries.len(), 16, "scan sees every key across shards");
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                assert_eq!(keys, sorted, "merged scan is in key order");
            }
            other => panic!("scan returned {other:?}"),
        }
    }

    #[test]
    fn broadcast_reassembly_surfaces_staleness() {
        // If any shard rejected its copy of a scan as stale, the merged
        // response must be Moved (with the highest epoch seen), never a
        // silent partial merge.
        let t = ShardTopology::fresh(2);
        let plan = t.plan(vec![StoreOp::Scan { from: "".into(), to: "z".into() }]);
        let (_, reassembly) = plan.into_sub_batches();
        let resps = reassembly.reassemble(vec![
            vec![StoreResp::Entries(vec![("a".into(), 1)])],
            vec![StoreResp::Moved { epoch: 3 }],
        ]);
        assert_eq!(resps, vec![StoreResp::Moved { epoch: 3 }]);
    }

    #[test]
    fn active_shards_skips_idle_ones() {
        let t = ShardTopology::fresh(4);
        let plan = t.plan(vec![StoreOp::Put("only".into(), 1)]);
        let active: Vec<usize> = plan.active_shards().collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0], t.shard_of("only"));
    }
}
