//! Offline stand-in for [`proptest`](https://docs.rs/proptest), covering the
//! subset this workspace uses:
//!
//! * the [`Strategy`] trait with `prop_map`, implemented for integer ranges,
//!   2/3-tuples, [`collection::vec`] and [`bool_strategies::weighted`];
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header);
//! * [`prop_assert!`] / [`prop_assert_eq!`], which early-return a
//!   [`TestCaseError`] instead of panicking mid-case.
//!
//! Differences from real proptest: generation is plain random sampling from
//! a per-test deterministic seed — there is **no shrinking**; a failing case
//! reports its case index and message only. That is sufficient for CI-grade
//! property checking without network access to crates.io.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The deterministic generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: state ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// The next pseudo-random word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed test case, carrying the rejection message.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only `cases` is honored by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification for [`vec()`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool` in real proptest).
pub mod bool_strategies {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`weighted`].
    #[derive(Clone, Debug)]
    pub struct Weighted {
        probability: f64,
    }

    /// `true` with the given probability.
    pub fn weighted(probability: f64) -> Weighted {
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.probability
        }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::collection;

    /// Boolean strategies.
    pub mod bool {
        pub use crate::bool_strategies::weighted;
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, early-returning a
/// [`TestCaseError`] on failure (so the runner can report the case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Supports the subset of real proptest syntax this
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0u8..4, 1..60)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $(let $arg = $strategy;)+
            #[allow(unused_parens)]
            let strategies = ($($arg),+);
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                #[allow(unused_parens)]
                let ($($arg),+) = {
                    #[allow(unused_parens)]
                    let ($(ref $arg),+) = strategies;
                    ($($crate::Strategy::generate($arg, &mut rng)),+)
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, err
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
