//! Offline stand-in for [`rand_chacha`](https://docs.rs/rand_chacha).
//!
//! [`ChaCha8Rng`] here keeps the name (so call sites compile unchanged) but
//! is internally a SplitMix64 generator: deterministic in the seed, good
//! statistical spread for scheduling/stress purposes, and dependency-free.
//! It is **not** stream-compatible with the real ChaCha8 and not
//! cryptographic.

use rand::{RngCore, SeedableRng};

/// A deterministic seeded PRNG with the `rand_chacha` type name.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    state: u64,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so that seeds 0 and 1 do not produce correlated streams.
        let mut rng = ChaCha8Rng { state: seed ^ 0x9e37_79b9_7f4a_7c15 };
        rng.next_u64();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(2usize..9);
            assert!((2..9).contains(&v));
            let w = rng.gen_range(0u64..=4);
            assert!(w <= 4);
        }
    }
}
