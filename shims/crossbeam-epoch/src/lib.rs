//! Offline stand-in for [`crossbeam-epoch`](https://docs.rs/crossbeam-epoch),
//! covering exactly the API surface this workspace uses: [`Atomic`],
//! [`Owned`], [`Shared`], [`Guard`], [`pin`] and [`unprotected`].
//!
//! Reclamation model: instead of per-thread epochs, retired pointers go to a
//! global garbage list and are freed when the global count of live guards
//! drops to zero. This is coarser than real epoch reclamation (garbage can
//! accumulate while any guard is pinned) but preserves the safety contract
//! the callers rely on: a pointer loaded under a live guard is never freed
//! while that guard is alive, because it was unlinked before retirement and
//! the guard count cannot reach zero before the guard drops.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A deferred-destruction record: a type-erased pointer plus its dropper.
struct Garbage {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: the pointed-to value is only ever dropped once, by whichever
// thread drains the list; callers of `defer_destroy` accept (per its safety
// contract) that destruction may run on another thread.
unsafe impl Send for Garbage {}

static LIVE_GUARDS: AtomicUsize = AtomicUsize::new(0);
static GARBAGE: Mutex<Vec<Garbage>> = Mutex::new(Vec::new());
// Tracks GARBAGE's length so the hot path (guard drop with nothing retired)
// stays a single atomic load instead of taking the mutex.
static GARBAGE_LEN: AtomicUsize = AtomicUsize::new(0);

fn drain_garbage_if_quiescent() {
    if GARBAGE_LEN.load(Ordering::Acquire) == 0 {
        return;
    }
    let drained: Vec<Garbage> = {
        let Ok(mut garbage) = GARBAGE.lock() else {
            return;
        };
        if LIVE_GUARDS.load(Ordering::Acquire) != 0 {
            return;
        }
        GARBAGE_LEN.store(0, Ordering::Release);
        std::mem::take(&mut *garbage)
    };
    // Destructors run after the lock is released: a retired value whose own
    // Drop pins/unpins (re-entering this function) must not deadlock. The
    // records are already unlinked and were retired before the count hit
    // zero, so no new guard can reach them.
    for g in drained {
        // SAFETY: each record is pushed exactly once and drained exactly
        // once; no guard was live at the takeover point, so no reader can
        // still hold the pointer.
        unsafe { (g.drop_fn)(g.ptr) };
    }
}

/// A pinned-epoch witness. Pointers loaded while a guard is live remain
/// valid until the guard is dropped.
pub struct Guard {
    counted: bool,
}

impl Guard {
    /// Defers destruction of the value behind `shared` until no guard is
    /// live.
    ///
    /// # Safety
    ///
    /// `shared` must point to a live heap allocation created by
    /// [`Owned::new`]/[`Atomic::new`], must already be unreachable for new
    /// readers, and must not be retired twice.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        unsafe fn drop_box<T>(ptr: *mut u8) {
            drop(Box::from_raw(ptr.cast::<T>()));
        }
        if !shared.ptr.is_null() {
            // APC-LINT: allow(progress): shim-only global garbage mutex, held for one push; upstream crossbeam-epoch retires into per-thread bags without locking
            let mut garbage = GARBAGE.lock().expect("garbage list poisoned");
            garbage.push(Garbage { ptr: shared.ptr.cast::<u8>(), drop_fn: drop_box::<T> });
            GARBAGE_LEN.store(garbage.len(), Ordering::Release);
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.counted && LIVE_GUARDS.fetch_sub(1, Ordering::AcqRel) == 1 {
            drain_garbage_if_quiescent();
        }
    }
}

/// Pins the current thread, returning a guard under which loaded pointers
/// stay valid.
pub fn pin() -> Guard {
    LIVE_GUARDS.fetch_add(1, Ordering::AcqRel);
    Guard { counted: true }
}

/// Returns a guard usable without pinning.
///
/// # Safety
///
/// The caller must guarantee no concurrent access to the data structures the
/// guard is used with (e.g. holding `&mut` or being inside `Drop`).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { counted: false };
    &UNPROTECTED
}

// SAFETY: `Guard` carries no thread-local state in this shim.
unsafe impl Sync for Guard {}

/// An owned heap value, not yet published.
pub struct Owned<T> {
    ptr: *mut T,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned { ptr: Box::into_raw(Box::new(value)) }
    }

    /// Converts back into a `Box`.
    pub fn into_box(self) -> Box<T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        // SAFETY: `ptr` came from `Box::into_raw` and ownership is unique.
        unsafe { Box::from_raw(ptr) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: sole owner; the value was never published.
        drop(unsafe { Box::from_raw(self.ptr) });
    }
}

/// A shared pointer valid for the lifetime of a guard.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _guard: PhantomData<&'g ()>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared { ptr: std::ptr::null_mut(), _guard: PhantomData }
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences, if non-null.
    ///
    /// # Safety
    ///
    /// The pointer must have been loaded under the guard `'g` is tied to,
    /// and the pointee must not be mutated concurrently.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.ptr.as_ref()
    }

    /// Takes unique ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null, unreachable by other threads, and not
    /// already retired.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned { ptr: self.ptr }
    }
}

/// Either an [`Owned`] or a [`Shared`] pointer, for APIs accepting both.
pub trait Pointer<T> {
    /// The raw pointer, without giving up ownership.
    fn as_ptr(&self) -> *mut T;
    /// Consumes `self`, returning the raw pointer.
    fn into_ptr(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn as_ptr(&self) -> *mut T {
        self.ptr
    }
    fn into_ptr(self) -> *mut T {
        let ptr = self.ptr;
        std::mem::forget(self);
        ptr
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn as_ptr(&self) -> *mut T {
        self.ptr
    }
    fn into_ptr(self) -> *mut T {
        self.ptr
    }
}

/// The failed result of [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value actually found in the atomic.
    pub current: Shared<'g, T>,
    /// The proposed new value, handed back to the caller.
    pub new: P,
}

/// An atomic nullable pointer to a heap `T`.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: mirrors crossbeam — the pointer may be handed between threads and
// the pointee shared, so both bounds are required.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null atomic pointer.
    pub fn null() -> Self {
        Atomic { ptr: AtomicPtr::new(std::ptr::null_mut()) }
    }

    /// Allocates `value` and stores the pointer.
    pub fn new(value: T) -> Self {
        Atomic { ptr: AtomicPtr::new(Box::into_raw(Box::new(value))) }
    }

    /// Loads the current pointer under `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { ptr: self.ptr.load(ord), _guard: PhantomData }
    }

    /// Atomically swaps in `new`, returning the previous pointer.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared { ptr: self.ptr.swap(new.into_ptr(), ord), _guard: PhantomData }
    }

    /// Atomically replaces `current` with `new`, on failure handing `new`
    /// back in the error.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        // `new` must only be consumed if the CAS succeeds; on failure it is
        // handed back to the caller inside the error.
        match self.ptr.compare_exchange(current.ptr, new.as_ptr(), success, failure) {
            Ok(prev) => {
                let _ = new.into_ptr();
                Ok(Shared { ptr: prev, _guard: PhantomData })
            }
            Err(found) => Err(CompareExchangeError {
                current: Shared { ptr: found, _guard: PhantomData },
                new,
            }),
        }
    }
}
