//! Offline stand-in for [`rand`](https://docs.rs/rand), covering the subset
//! this workspace uses: [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] over
//! integer ranges, and [`seq::SliceRandom::choose`].
//!
//! Generators here are deterministic, seeded PRNGs with reasonable
//! statistical behavior for schedule shuffling and stress tests — not
//! bit-compatible with the real `rand` streams, and not cryptographic.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`, which must be non-empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is a sample.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}
