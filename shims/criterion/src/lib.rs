//! Offline stand-in for [`criterion`](https://docs.rs/criterion), covering
//! the subset this workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! calibration pass, then enough iterations to fill a small time budget, and
//! prints the mean time per iteration. Good enough to track relative
//! movement between PRs without a registry; swap in the real crate for
//! publication-grade statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// Ignored by this shim beyond API compatibility.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup amortized over many iterations.
    SmallInput,
    /// Large inputs: fewer iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    /// Total measured time across iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { elapsed: Duration::ZERO, iters: 0, budget }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: one untimed run, then time batches until the budget
        // is spent.
        black_box(routine());
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.iters >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.iters >= 1_000_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<50} no measurement");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
        println!("bench {name:<50} {per_iter:>12} ns/iter ({} iters)", self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    budget: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales this shim's time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion defaults to 100 samples; scale the budget so
        // explicitly-small groups (expensive benches) stay fast.
        self.budget = Duration::from_millis((n as u64).clamp(10, 100));
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into_id()));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.into_id()));
        self
    }

    /// Finishes the group (a no-op in this shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), budget: Duration::from_millis(50), _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(Duration::from_millis(50));
        f(&mut bencher);
        bencher.report(&id.into_id());
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
