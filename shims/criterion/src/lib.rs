//! Offline stand-in for [`criterion`](https://docs.rs/criterion), covering
//! the subset this workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! calibration pass, then enough iterations to fill a small time budget, and
//! prints the mean time per iteration. Good enough to track relative
//! movement between PRs without a registry; swap in the real crate for
//! publication-grade statistics.
//!
//! ## Machine-readable output
//!
//! When the `BENCH_JSON` environment variable names a file, the
//! [`criterion_main!`]-generated `main` writes every measurement there as
//! JSON — one record per benchmark with `ns_per_iter`, and (scaled by the
//! group's [`Throughput`], default 1 element/iter) `ns_per_op` and
//! `ops_per_sec`. This is how the repository records its perf trajectory
//! (`BENCH_*.json` artifacts in CI).

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement, captured for the JSON report.
#[derive(Clone, Debug)]
struct BenchRecord {
    name: String,
    ns_per_iter: u128,
    elements_per_iter: u64,
}

/// All measurements of this process, in completion order.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn minimal_json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Writes the JSON report to the path named by `BENCH_JSON`, if set.
///
/// Called automatically by the `main` that [`criterion_main!`] generates;
/// harmless to call when the variable is absent. Returns the path written.
pub fn write_json_report() -> Option<String> {
    let path = std::env::var("BENCH_JSON").ok()?;
    let records = RESULTS.lock().expect("bench results poisoned");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let ns_per_op = r.ns_per_iter as f64 / r.elements_per_iter.max(1) as f64;
        let ops_per_sec = if ns_per_op > 0.0 { 1e9 / ns_per_op } else { 0.0 };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"elements_per_iter\": {}, \
             \"ns_per_op\": {:.1}, \"ops_per_sec\": {:.1}}}{}\n",
            minimal_json_escape(&r.name),
            r.ns_per_iter,
            r.elements_per_iter,
            ns_per_op,
            ops_per_sec,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => {
            println!("bench json report written to {path}");
            Some(path)
        }
        Err(err) => {
            eprintln!("bench json report failed for {path}: {err}");
            None
        }
    }
}

/// Records an externally measured result into the JSON report, alongside
/// the timed series.
///
/// For benches that drive their own measurement loop — latency percentiles
/// over a load run, a wall-clock throughput — where [`Bencher::iter`]'s
/// mean-of-repeats shape does not fit. The record lands in the same
/// `BENCH_JSON` report (and trend gate) as every timed series.
pub fn report_measurement(name: &str, ns_per_iter: u128, elements_per_iter: u64) {
    println!("bench {name:<50} {ns_per_iter:>12} ns/iter (reported)");
    RESULTS.lock().expect("bench results poisoned").push(BenchRecord {
        name: name.to_owned(),
        ns_per_iter,
        elements_per_iter: elements_per_iter.max(1),
    });
}

/// Per-iteration work declared by a benchmark group, used to scale
/// per-iteration times into per-operation rates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Each iteration processes this many logical elements/operations.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

impl Throughput {
    fn per_iter(self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        }
    }
}

/// Re-export of the standard optimizer barrier under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// Ignored by this shim beyond API compatibility.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup amortized over many iterations.
    SmallInput,
    /// Large inputs: fewer iterations per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    /// Total measured time across iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
    /// Logical operations per iteration (the group's [`Throughput`]).
    elements: u64,
}

impl Bencher {
    fn new(budget: Duration, elements: u64) -> Self {
        Bencher { elapsed: Duration::ZERO, iters: 0, budget, elements }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: one untimed run, then time batches until the budget
        // is spent.
        black_box(routine());
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.iters >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.iters >= 1_000_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<50} no measurement");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
        println!("bench {name:<50} {per_iter:>12} ns/iter ({} iters)", self.iters);
        RESULTS.lock().expect("bench results poisoned").push(BenchRecord {
            name: name.to_owned(),
            ns_per_iter: per_iter,
            elements_per_iter: self.elements,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    budget: Duration,
    elements: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales this shim's time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion defaults to 100 samples; scale the budget so
        // explicitly-small groups (expensive benches) stay fast, while
        // gated series (bench_trend in CI) can buy a bigger averaging
        // window against scheduler noise.
        self.budget = Duration::from_millis((n as u64).clamp(10, 400));
        self
    }

    /// Declares the per-iteration workload, so reports can speak in
    /// per-operation terms.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.elements = t.per_iter().max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.budget, self.elements);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into_id()));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.budget, self.elements);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.into_id()));
        self
    }

    /// Finishes the group (a no-op in this shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: Duration::from_millis(50),
            elements: 1,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(Duration::from_millis(50), 1);
        f(&mut bencher);
        bencher.report(&id.into_id());
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, then writing the JSON report if
/// `BENCH_JSON` names a file.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            let _ = $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_reports() {
        assert_eq!(Throughput::Elements(40).per_iter(), 40);
        assert_eq!(Throughput::Bytes(8).per_iter(), 8);
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(minimal_json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(minimal_json_escape("x\ny"), "x y");
    }

    #[test]
    fn report_registers_records() {
        let mut b = Bencher::new(Duration::from_millis(1), 10);
        b.iter(|| std::hint::black_box(1 + 1));
        b.report("shim-test/report-registers");
        let results = RESULTS.lock().unwrap();
        let rec = results
            .iter()
            .find(|r| r.name == "shim-test/report-registers")
            .expect("record registered");
        assert_eq!(rec.elements_per_iter, 10);
    }

    #[test]
    fn report_measurement_registers_records() {
        report_measurement("shim-test/reported", 1234, 3);
        let results = RESULTS.lock().unwrap();
        let rec = results
            .iter()
            .find(|r| r.name == "shim-test/reported")
            .expect("reported record registered");
        assert_eq!((rec.ns_per_iter, rec.elements_per_iter), (1234, 3));
    }
}
